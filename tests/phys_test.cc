#include <gtest/gtest.h>

#include <set>

#include "optimizer/phys.h"

namespace tango {
namespace optimizer {
namespace {

TEST(PhysTest, AlgorithmNamesMatchThePapersNotation) {
  EXPECT_STREQ(AlgorithmName(Algorithm::kTransferM), "TRANSFER^M");
  EXPECT_STREQ(AlgorithmName(Algorithm::kTransferD), "TRANSFER^D");
  EXPECT_STREQ(AlgorithmName(Algorithm::kTAggrM), "TAGGR^M");
  EXPECT_STREQ(AlgorithmName(Algorithm::kTAggrD), "TAGGR^D");
  EXPECT_STREQ(AlgorithmName(Algorithm::kFilterM), "FILTER^M");
  EXPECT_STREQ(AlgorithmName(Algorithm::kSortD), "SORT^D");
}

TEST(PhysTest, SiteClassification) {
  // Every ^D algorithm is DBMS-side; every ^M algorithm and the transfers
  // are executed by the middleware's engine.
  for (Algorithm alg : {Algorithm::kScanD, Algorithm::kSelectD,
                        Algorithm::kProjectD, Algorithm::kSortD,
                        Algorithm::kJoinD, Algorithm::kTJoinD,
                        Algorithm::kTAggrD, Algorithm::kDistinctD,
                        Algorithm::kProductD}) {
    EXPECT_TRUE(IsDbmsAlgorithm(alg)) << AlgorithmName(alg);
  }
  for (Algorithm alg : {Algorithm::kFilterM, Algorithm::kProjectM,
                        Algorithm::kSortM, Algorithm::kMergeJoinM,
                        Algorithm::kTJoinM, Algorithm::kTAggrM,
                        Algorithm::kDupElimM, Algorithm::kCoalesceM,
                        Algorithm::kDiffM, Algorithm::kTransferM,
                        Algorithm::kTransferD}) {
    EXPECT_FALSE(IsDbmsAlgorithm(alg)) << AlgorithmName(alg);
  }
}

TEST(PhysTest, PropsKeyDistinguishesSiteAndOrder) {
  PhysProps a{Site::kDbms, {}};
  PhysProps b{Site::kMiddleware, {}};
  PhysProps c{Site::kMiddleware, {{"POSID", true}}};
  PhysProps d{Site::kMiddleware, {{"POSID", false}}};
  PhysProps e{Site::kMiddleware, {{"POSID", true}, {"T1", true}}};
  std::set<std::string> keys = {a.Key(), b.Key(), c.Key(), d.Key(), e.Key()};
  EXPECT_EQ(keys.size(), 5u);
}

TEST(PhysTest, SiteNames) {
  EXPECT_STREQ(SiteName(Site::kDbms), "DBMS");
  EXPECT_STREQ(SiteName(Site::kMiddleware), "MW");
}

}  // namespace
}  // namespace optimizer
}  // namespace tango
