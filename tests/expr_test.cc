#include <gtest/gtest.h>

#include "expr/expr.h"
#include "sql/parser.h"

namespace tango {
namespace {

Schema PositionSchema() {
  return Schema({{"", "POSID", DataType::kInt},
                 {"", "EMPNAME", DataType::kString},
                 {"", "T1", DataType::kInt},
                 {"", "T2", DataType::kInt},
                 {"", "PAY", DataType::kDouble}});
}

ExprPtr ParseExpr(const std::string& text) {
  auto sel = sql::Parser::ParseSelect("SELECT X FROM T WHERE " + text);
  EXPECT_TRUE(sel.ok()) << sel.status().ToString();
  return sel.ValueOrDie()->where;
}

TEST(ExprTest, BindResolvesColumns) {
  auto e = ParseExpr("PosID = 1 AND T1 < T2");
  auto bound = Bind(e, PositionSchema());
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  Tuple row = {Value(int64_t{1}), Value("Tom"), Value(int64_t{2}),
               Value(int64_t{20}), Value(10.5)};
  EXPECT_TRUE(EvalPredicate(*bound.ValueOrDie(), row));
  row[0] = Value(int64_t{2});
  EXPECT_FALSE(EvalPredicate(*bound.ValueOrDie(), row));
}

TEST(ExprTest, BindFailsOnUnknownColumn) {
  auto e = ParseExpr("Nope = 1");
  EXPECT_FALSE(Bind(e, PositionSchema()).ok());
}

TEST(ExprTest, ArithmeticAndDivision) {
  Schema s({{"", "X", DataType::kInt}});
  auto e = Bind(ParseExpr("X * 2 + 1 = 7"), s).ValueOrDie();
  EXPECT_TRUE(EvalPredicate(*e, {Value(int64_t{3})}));
  auto div = Bind(ParseExpr("X / 2 = 1.5"), s).ValueOrDie();
  EXPECT_TRUE(EvalPredicate(*div, {Value(int64_t{3})}));
  // Division by zero yields NULL, which is false in a predicate.
  auto dz = Bind(ParseExpr("X / 0 = 1"), s).ValueOrDie();
  EXPECT_FALSE(EvalPredicate(*dz, {Value(int64_t{3})}));
}

TEST(ExprTest, ThreeValuedLogic) {
  Schema s({{"", "X", DataType::kInt}});
  Tuple null_row = {Value::Null()};
  // NULL = NULL is NULL -> false.
  EXPECT_FALSE(EvalPredicate(*Bind(ParseExpr("X = X"), s).ValueOrDie(), null_row));
  // FALSE AND NULL is FALSE; TRUE OR NULL is TRUE.
  EXPECT_FALSE(EvalPredicate(
      *Bind(ParseExpr("1 = 2 AND X = 1"), s).ValueOrDie(), null_row));
  EXPECT_TRUE(EvalPredicate(
      *Bind(ParseExpr("1 = 1 OR X = 1"), s).ValueOrDie(), null_row));
  // IS NULL sees through it.
  EXPECT_TRUE(EvalPredicate(
      *Bind(ParseExpr("X IS NULL"), s).ValueOrDie(), null_row));
  // NOT NULL is NULL -> false.
  EXPECT_FALSE(EvalPredicate(
      *Bind(ParseExpr("NOT X = 1"), s).ValueOrDie(), null_row));
}

TEST(ExprTest, GreatestLeast) {
  Schema s({{"", "A", DataType::kInt}, {"", "B", DataType::kInt}});
  auto g = Bind(ParseExpr("GREATEST(A, B) = 9"), s).ValueOrDie();
  EXPECT_TRUE(EvalPredicate(*g, {Value(int64_t{9}), Value(int64_t{4})}));
  auto l = Bind(ParseExpr("LEAST(A, B, 2) = 2"), s).ValueOrDie();
  EXPECT_TRUE(EvalPredicate(*l, {Value(int64_t{9}), Value(int64_t{4})}));
  // Oracle semantics: NULL argument poisons the result.
  auto gn = Bind(ParseExpr("GREATEST(A, B) = 9"), s).ValueOrDie();
  EXPECT_FALSE(EvalPredicate(*gn, {Value(int64_t{9}), Value::Null()}));
}

TEST(ExprTest, SplitConjunctsFlattensNestedAnds) {
  auto e = ParseExpr("A = 1 AND (B = 2 AND C = 3) AND D = 4");
  auto parts = SplitConjuncts(e);
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1]->ToString(), "B = 2");
  // OR is not split.
  auto o = SplitConjuncts(ParseExpr("A = 1 OR B = 2"));
  EXPECT_EQ(o.size(), 1u);
}

TEST(ExprTest, CollectColumnsIsAttrOfPaper) {
  std::vector<std::string> cols;
  CollectColumns(ParseExpr("A.PosID = B.PosID AND A.T1 < B.T2"), &cols);
  ASSERT_EQ(cols.size(), 4u);
  EXPECT_EQ(cols[0], "A.POSID");
  EXPECT_EQ(cols[3], "B.T2");
}

TEST(ExprTest, ColumnsResolveInChecksSchemaCoverage) {
  Schema s = PositionSchema();
  EXPECT_TRUE(ColumnsResolveIn(ParseExpr("PosID = 1 AND T1 < 5"), s));
  EXPECT_FALSE(ColumnsResolveIn(ParseExpr("PosID = 1 AND Missing < 5"), s));
}

TEST(ExprTest, StructuralEquality) {
  auto a = ParseExpr("PosID = 1 AND T1 < T2");
  auto b = ParseExpr("PosID = 1 AND T1 < T2");
  auto c = ParseExpr("PosID = 2 AND T1 < T2");
  EXPECT_TRUE(a->Equals(*b));
  EXPECT_FALSE(a->Equals(*c));
}

TEST(ExprTest, InferTypes) {
  Schema s = PositionSchema();
  EXPECT_EQ(InferType(Expr::ColumnRef("PAY"), s).ValueOrDie(),
            DataType::kDouble);
  EXPECT_EQ(InferType(Expr::ColumnRef("EMPNAME"), s).ValueOrDie(),
            DataType::kString);
  auto add = Expr::Binary(BinaryOp::kAdd, Expr::ColumnRef("POSID"),
                          Expr::ColumnRef("PAY"));
  EXPECT_EQ(InferType(add, s).ValueOrDie(), DataType::kDouble);
  auto agg = Expr::Aggregate(AggFunc::kCount, Expr::ColumnRef("POSID"));
  EXPECT_EQ(InferType(agg, s).ValueOrDie(), DataType::kInt);
  auto avg = Expr::Aggregate(AggFunc::kAvg, Expr::ColumnRef("POSID"));
  EXPECT_EQ(InferType(avg, s).ValueOrDie(), DataType::kDouble);
}

TEST(ExprTest, ContainsAggregate) {
  EXPECT_TRUE(ContainsAggregate(
      Expr::Aggregate(AggFunc::kMax, Expr::ColumnRef("X"))));
  EXPECT_FALSE(ContainsAggregate(ParseExpr("A = 1")));
}

TEST(ExprTest, ToStringRoundTripsThroughParser) {
  // Printing then re-parsing yields a structurally equal tree.
  auto e = ParseExpr("A.PosID = B.PosID AND A.T1 < B.T2 AND A.T2 > B.T1");
  auto reparsed = ParseExpr(e->ToString());
  EXPECT_TRUE(e->Equals(*reparsed)) << e->ToString();
}

}  // namespace
}  // namespace tango
