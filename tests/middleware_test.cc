#include <gtest/gtest.h>

#include "tango/middleware.h"

namespace tango {
namespace {

// The running example: POSITION of Figure 3(a).
void LoadFigure3(dbms::Engine* db) {
  ASSERT_TRUE(db->Execute("CREATE TABLE POSITION (PosID INT, EmpName "
                          "VARCHAR(20), T1 INT, T2 INT)")
                  .ok());
  ASSERT_TRUE(db->Execute("INSERT INTO POSITION VALUES "
                          "(1, 'Tom', 2, 20), (1, 'Jane', 5, 25), "
                          "(2, 'Tom', 5, 10)")
                  .ok());
  ASSERT_TRUE(db->Execute("ANALYZE").ok());
}

Middleware::Config TestConfig() {
  Middleware::Config config;
  config.wire.simulate_delay = false;
  return config;
}

TEST(MiddlewareTest, Query1AggregationMatchesFigure3c) {
  dbms::Engine db;
  LoadFigure3(&db);
  Middleware mw(&db, TestConfig());
  auto result = mw.Query(
      "TEMPORAL SELECT PosID, T1, T2, COUNT(PosID) AS CNT FROM POSITION "
      "GROUP BY PosID OVER TIME ORDER BY PosID, T1");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const auto& rows = result.ValueOrDie().rows;
  ASSERT_EQ(rows.size(), 4u);
  const int64_t expected[4][4] = {
      {1, 2, 5, 1}, {1, 5, 20, 2}, {1, 20, 25, 1}, {2, 5, 10, 1}};
  for (size_t i = 0; i < 4; ++i) {
    for (size_t c = 0; c < 4; ++c) {
      EXPECT_EQ(rows[i][c].AsInt(), expected[i][c]) << i << "," << c;
    }
  }
}

TEST(MiddlewareTest, RunningExampleMatchesFigure3b) {
  // Section 2.2: temporal aggregation joined back to POSITION, sorted by
  // position — the result of Figure 3(b).
  dbms::Engine db;
  LoadFigure3(&db);
  Middleware mw(&db, TestConfig());
  auto result = mw.Query(
      "TEMPORAL SELECT C.PosID, EmpName, T1, T2, CountOfPosID "
      "FROM (TEMPORAL SELECT PosID, COUNT(PosID) AS CountOfPosID "
      "      FROM POSITION GROUP BY PosID OVER TIME) C, POSITION P "
      "WHERE C.PosID = P.PosID "
      "ORDER BY PosID, T1, EmpName DESC");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const auto& rows = result.ValueOrDie().rows;
  // Figure 3(b): 5 rows.
  ASSERT_EQ(rows.size(), 5u);
  // (1, Tom, 2, 5, 1), (1, Tom, 5, 20, 2), (1, Jane, 5, 20, 2),
  // (1, Jane, 20, 25, 1), (2, Tom, 5, 10, 1).
  struct Row {
    int64_t pos;
    const char* name;
    int64_t t1, t2, cnt;
  };
  const Row expected[5] = {{1, "Tom", 2, 5, 1},
                           {1, "Tom", 5, 20, 2},
                           {1, "Jane", 5, 20, 2},
                           {1, "Jane", 20, 25, 1},
                           {2, "Tom", 5, 10, 1}};
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(rows[i][0].AsInt(), expected[i].pos) << i;
    EXPECT_EQ(rows[i][1].AsString(), expected[i].name) << i;
    EXPECT_EQ(rows[i][2].AsInt(), expected[i].t1) << i;
    EXPECT_EQ(rows[i][3].AsInt(), expected[i].t2) << i;
    EXPECT_EQ(rows[i][4].AsInt(), expected[i].cnt) << i;
  }
}

TEST(MiddlewareTest, TemporaryTablesAreDropped) {
  dbms::Engine db;
  LoadFigure3(&db);
  Middleware mw(&db, TestConfig());
  auto result = mw.Query(
      "TEMPORAL SELECT C.PosID, EmpName, T1, T2, CNT "
      "FROM (TEMPORAL SELECT PosID, COUNT(PosID) AS CNT "
      "      FROM POSITION GROUP BY PosID OVER TIME) C, POSITION P "
      "WHERE C.PosID = P.PosID ORDER BY PosID");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (const std::string& t : db.catalog().TableNames()) {
    EXPECT_EQ(t.find("TANGO_TMP"), std::string::npos) << t;
  }
}

TEST(MiddlewareTest, PlanAgreementAcrossForcedShapes) {
  // All-DBMS (exploration off still yields a correct plan) vs optimized:
  // identical results.
  dbms::Engine db;
  LoadFigure3(&db);
  const char* q =
      "TEMPORAL SELECT PosID, T1, T2, COUNT(PosID) AS CNT FROM POSITION "
      "GROUP BY PosID OVER TIME ORDER BY PosID, T1";

  Middleware optimized(&db, TestConfig());
  auto a = optimized.Query(q);
  ASSERT_TRUE(a.ok()) << a.status().ToString();

  // Force the all-DBMS shape by making middleware algorithms prohibitive.
  Middleware dbms_only(&db, TestConfig());
  dbms_only.cost_model().factors().taggm1 = 1e9;
  dbms_only.cost_model().factors().taggm2 = 1e9;
  dbms_only.cost_model().factors().sortm = 1e9;
  auto prepared = dbms_only.Prepare(q);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  // The chosen plan must now use TAGGR^D (everything in the DBMS).
  std::function<bool(const optimizer::PhysPlanPtr&)> has_taggrd =
      [&](const optimizer::PhysPlanPtr& p) {
        if (p->algorithm == optimizer::Algorithm::kTAggrD) return true;
        for (const auto& c : p->children) {
          if (has_taggrd(c)) return true;
        }
        return false;
      };
  ASSERT_TRUE(has_taggrd(prepared.ValueOrDie().plan))
      << prepared.ValueOrDie().plan->ToString();
  auto b = dbms_only.Execute(prepared.ValueOrDie().plan);
  ASSERT_TRUE(b.ok()) << b.status().ToString();

  ASSERT_EQ(a.ValueOrDie().rows.size(), b.ValueOrDie().rows.size());
  for (size_t i = 0; i < a.ValueOrDie().rows.size(); ++i) {
    for (size_t c = 0; c < a.ValueOrDie().rows[i].size(); ++c) {
      EXPECT_EQ(a.ValueOrDie().rows[i][c].Compare(b.ValueOrDie().rows[i][c]),
                0)
          << i << "," << c;
    }
  }
}

TEST(MiddlewareTest, RegularJoinQuery) {
  // Query 4 shape: a regular join, no temporal semantics.
  dbms::Engine db;
  LoadFigure3(&db);
  ASSERT_TRUE(db.Execute("CREATE TABLE EMPLOYEE (EmpName VARCHAR(20), "
                         "Addr VARCHAR(30))")
                  .ok());
  ASSERT_TRUE(db.Execute("INSERT INTO EMPLOYEE VALUES "
                         "('Tom', '12 Elm St'), ('Jane', '9 Oak Ave')")
                  .ok());
  ASSERT_TRUE(db.Execute("ANALYZE").ok());
  Middleware mw(&db, TestConfig());
  auto result = mw.Query(
      "SELECT PosID, P.EmpName, Addr FROM POSITION P, EMPLOYEE E "
      "WHERE P.EmpName = E.EmpName ORDER BY PosID, Addr");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.ValueOrDie().rows.size(), 3u);
  EXPECT_EQ(result.ValueOrDie().rows[0][2].AsString(), "12 Elm St");
}

TEST(MiddlewareTest, TimeWindowQueryPushesSelection) {
  dbms::Engine db;
  LoadFigure3(&db);
  Middleware mw(&db, TestConfig());
  auto result = mw.Query(
      "TEMPORAL SELECT PosID, T1, T2, COUNT(PosID) AS CNT FROM POSITION "
      "WHERE OVERLAPS PERIOD (4, 6) "
      "GROUP BY PosID OVER TIME ORDER BY PosID, T1");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Tuples overlapping [4,6): all three. Constant periods as in Fig 3(c).
  // The WHERE applies *before* aggregation (SQL semantics), so the result
  // equals Figure 3(c) computed over all three tuples.
  ASSERT_EQ(result.ValueOrDie().rows.size(), 4u);
}

TEST(MiddlewareTest, StatisticsCollectorFetchesOverWire) {
  dbms::Engine db;
  LoadFigure3(&db);
  Middleware mw(&db, TestConfig());
  ASSERT_TRUE(mw.CollectStatistics({"POSITION"}).ok());
  auto stats = mw.TableStatistics("POSITION");
  ASSERT_TRUE(stats.ok());
  EXPECT_DOUBLE_EQ(stats.ValueOrDie().cardinality, 3);
  EXPECT_FALSE(mw.TableStatistics("MISSING").ok());
}

TEST(MiddlewareTest, HistogramStrippingConfig) {
  dbms::Engine db;
  LoadFigure3(&db);
  Middleware::Config config = TestConfig();
  config.use_histograms = false;
  Middleware mw(&db, config);
  ASSERT_TRUE(mw.CollectStatistics({"POSITION"}).ok());
  auto stats = mw.TableStatistics("POSITION");
  ASSERT_TRUE(stats.ok());
  for (const auto& c : stats.ValueOrDie().columns) {
    EXPECT_TRUE(c.histogram.empty());
  }
}

TEST(MiddlewareTest, FeedbackAdjustsCostFactors) {
  dbms::Engine db;
  // Enough data for measurable per-algorithm times.
  ASSERT_TRUE(db.Execute("CREATE TABLE POSITION (PosID INT, EmpName "
                         "VARCHAR(20), T1 INT, T2 INT)")
                  .ok());
  std::string values;
  for (int i = 0; i < 3000; ++i) {
    if (i > 0) values += ", ";
    values += "(" + std::to_string(i % 300) + ", 'emp" + std::to_string(i) +
              "', " + std::to_string(i % 97) + ", " +
              std::to_string(i % 97 + 10) + ")";
  }
  ASSERT_TRUE(db.Execute("INSERT INTO POSITION VALUES " + values).ok());
  ASSERT_TRUE(db.Execute("ANALYZE").ok());

  Middleware::Config config = TestConfig();
  config.adapt = true;
  config.feedback_alpha = 0.5;
  Middleware mw(&db, config);
  const cost::CostFactors before = mw.cost_model().factors();
  auto result = mw.Query(
      "TEMPORAL SELECT PosID, T1, T2, COUNT(PosID) AS CNT FROM POSITION "
      "GROUP BY PosID OVER TIME ORDER BY PosID, T1");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // With the wire simulation off, observed times diverge from the default
  // factors' predictions: adaptation must move the factors of algorithms
  // that ran (TAGGR^M and the SORT^D inside the transferred fragment).
  const cost::CostFactors& after = mw.cost_model().factors();
  EXPECT_TRUE(after.taggm1 != before.taggm1 || after.taggm2 != before.taggm2 ||
              after.sortd != before.sortd || after.tm != before.tm);

  // And with adaptation disabled the factors stay put.
  Middleware::Config frozen = TestConfig();
  frozen.adapt = false;
  Middleware mw2(&db, frozen);
  const cost::CostFactors before2 = mw2.cost_model().factors();
  ASSERT_TRUE(mw2.Query("TEMPORAL SELECT PosID, T1, T2, COUNT(PosID) AS CNT "
                        "FROM POSITION GROUP BY PosID OVER TIME "
                        "ORDER BY PosID, T1")
                  .ok());
  EXPECT_EQ(mw2.cost_model().factors().tm, before2.tm);
  EXPECT_EQ(mw2.cost_model().factors().sortd, before2.sortd);
  EXPECT_EQ(mw2.cost_model().factors().taggm1, before2.taggm1);
}

TEST(MiddlewareTest, ExecutionReportsTimingsAndSql) {
  dbms::Engine db;
  LoadFigure3(&db);
  Middleware mw(&db, TestConfig());
  auto result = mw.Query(
      "TEMPORAL SELECT PosID, T1, T2, COUNT(PosID) AS CNT FROM POSITION "
      "GROUP BY PosID OVER TIME ORDER BY PosID, T1");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result.ValueOrDie().timings.empty());
  EXPECT_FALSE(result.ValueOrDie().sql_statements.empty());
  EXPECT_GT(result.ValueOrDie().elapsed_seconds, 0);
}

TEST(MiddlewareTest, ParseErrorsSurface) {
  dbms::Engine db;
  LoadFigure3(&db);
  Middleware mw(&db, TestConfig());
  EXPECT_FALSE(mw.Query("TEMPORAL SELECT FROM").ok());
  EXPECT_FALSE(mw.Query("TEMPORAL SELECT X FROM NO_SUCH_TABLE").ok());
  EXPECT_FALSE(
      mw.Query("TEMPORAL SELECT PosID FROM POSITION GROUP BY PosID").ok());
}

TEST(MiddlewareTest, CoalesceMergesValueEquivalentPeriods) {
  dbms::Engine db;
  ASSERT_TRUE(db.Execute("CREATE TABLE POSITION (PosID INT, EmpName "
                         "VARCHAR(20), T1 INT, T2 INT)")
                  .ok());
  // Tom holds position 1 in two adjacent stints and one overlapping one;
  // coalesced, they form a single period [2, 30).
  ASSERT_TRUE(db.Execute("INSERT INTO POSITION VALUES "
                         "(1, 'Tom', 2, 10), (1, 'Tom', 10, 20), "
                         "(1, 'Tom', 15, 30), (1, 'Jane', 40, 50), "
                         "(2, 'Tom', 5, 10)")
                  .ok());
  ASSERT_TRUE(db.Execute("ANALYZE").ok());
  Middleware mw(&db, TestConfig());
  auto result = mw.Query(
      "TEMPORAL SELECT COALESCE PosID, EmpName FROM POSITION "
      "ORDER BY PosID, EmpName");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const auto& rows = result.ValueOrDie().rows;
  ASSERT_EQ(rows.size(), 3u);
  // (1, Jane, 40, 50), (1, Tom, 2, 30), (2, Tom, 5, 10).
  EXPECT_EQ(rows[0][1].AsString(), "Jane");
  EXPECT_EQ(rows[1][2].AsInt(), 2);
  EXPECT_EQ(rows[1][3].AsInt(), 30);
  EXPECT_EQ(rows[2][0].AsInt(), 2);
}

TEST(MiddlewareTest, DistinctRemovesDuplicates) {
  dbms::Engine db;
  ASSERT_TRUE(db.Execute("CREATE TABLE POSITION (PosID INT, EmpName "
                         "VARCHAR(20), T1 INT, T2 INT)")
                  .ok());
  ASSERT_TRUE(db.Execute("INSERT INTO POSITION VALUES "
                         "(1, 'Tom', 2, 10), (1, 'Tom', 2, 10), "
                         "(2, 'Tom', 2, 10)")
                  .ok());
  ASSERT_TRUE(db.Execute("ANALYZE").ok());
  Middleware mw(&db, TestConfig());
  auto result = mw.Query(
      "TEMPORAL SELECT DISTINCT PosID, EmpName FROM POSITION ORDER BY PosID");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.ValueOrDie().rows.size(), 2u);
}

TEST(MiddlewareTest, SharedTransfersIssueOneStatement) {
  // §7 refinement: a temporal self-join whose two arguments are the same
  // DBMS fragment must transfer it once (and still be correct).
  dbms::Engine db;
  LoadFigure3(&db);
  const char* q =
      "TEMPORAL SELECT A.PosID, A.EmpName, B.EmpName "
      "FROM POSITION A, POSITION B "
      "WHERE A.PosID = B.PosID AND A.EmpName < B.EmpName ORDER BY PosID";

  auto run = [&](bool share) {
    Middleware::Config config = TestConfig();
    config.share_common_transfers = share;
    // Force the temporal join into the middleware so both arguments are
    // TRANSFER^M fragments.
    Middleware mw(&db, config);
    mw.cost_model().factors().joind = 1e9;
    mw.cost_model().factors().joindout = 1e9;
    mw.connection().ResetCounters();
    auto r = mw.Query(q);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::make_pair(r.ValueOrDie().rows.size(),
                          mw.connection().counters().bytes_to_client);
  };

  const auto [rows_shared, bytes_shared] = run(true);
  const auto [rows_plain, bytes_plain] = run(false);
  EXPECT_EQ(rows_shared, rows_plain);
  EXPECT_EQ(rows_shared, 1u);  // Figure 3: only Jane+Tom share position 1
  // Both arguments render to the same SQL, so sharing halves the wire
  // volume (strictly: result transfer aside, one argument transfer saved).
  EXPECT_LT(bytes_shared, bytes_plain);
  EXPECT_NEAR(static_cast<double>(bytes_shared),
              static_cast<double>(bytes_plain) / 2, bytes_plain * 0.2);
}

TEST(MiddlewareTest, ExceptComputesMultisetDifference) {
  dbms::Engine db;
  LoadFigure3(&db);
  Middleware mw(&db, TestConfig());
  // Everyone's assignments, minus Tom's: leaves Jane's single tuple.
  auto result = mw.Query(
      "TEMPORAL SELECT PosID, EmpName FROM POSITION "
      "EXCEPT TEMPORAL SELECT PosID, EmpName FROM POSITION "
      "WHERE EmpName = 'Tom'");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.ValueOrDie().rows.size(), 1u);
  EXPECT_EQ(result.ValueOrDie().rows[0][1].AsString(), "Jane");

  // Multiset semantics: subtracting one copy keeps the other.
  ASSERT_TRUE(db.Execute("CREATE TABLE D (X INT)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO D VALUES (1), (1), (2)").ok());
  ASSERT_TRUE(db.Execute("ANALYZE D").ok());
  auto ms = mw.Query("SELECT X FROM D EXCEPT SELECT X FROM D WHERE X = 2");
  ASSERT_TRUE(ms.ok()) << ms.status().ToString();
  EXPECT_EQ(ms.ValueOrDie().rows.size(), 2u);  // both 1s survive

  // Incompatible arms are rejected.
  EXPECT_FALSE(mw.Query("TEMPORAL SELECT PosID, EmpName FROM POSITION "
                        "EXCEPT SELECT X FROM D")
                   .ok());
}

TEST(MiddlewareTest, ExplainShowsPlanAndSqlWithoutExecuting) {
  dbms::Engine db;
  LoadFigure3(&db);
  Middleware mw(&db, TestConfig());
  auto prepared = mw.Prepare(
      "TEMPORAL SELECT PosID, T1, T2, COUNT(PosID) AS CNT FROM POSITION "
      "GROUP BY PosID OVER TIME ORDER BY PosID");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  const uint64_t before = db.statements_executed();
  auto explanation = mw.Explain(prepared.ValueOrDie());
  ASSERT_TRUE(explanation.ok()) << explanation.status().ToString();
  EXPECT_NE(explanation.ValueOrDie().find("chosen physical plan"),
            std::string::npos);
  EXPECT_NE(explanation.ValueOrDie().find("SELECT"), std::string::npos);
  // Explaining runs nothing against the DBMS.
  EXPECT_EQ(db.statements_executed(), before);
}

TEST(MiddlewareTest, SpillingSortProducesCorrectResults) {
  // A tiny middleware sort budget forces SORT^M to spill runs; the query
  // result must match the in-memory configuration exactly.
  dbms::Engine db;
  ASSERT_TRUE(db.Execute("CREATE TABLE R (G INT, V INT, T1 INT, T2 INT)")
                  .ok());
  std::vector<Tuple> rows;
  for (int i = 0; i < 4000; ++i) {
    rows.push_back({Value(static_cast<int64_t>(i % 37)),
                    Value(static_cast<int64_t>((i * 7919) % 1000)),
                    Value(static_cast<int64_t>(i % 97)),
                    Value(static_cast<int64_t>(i % 97 + 5))});
  }
  ASSERT_TRUE(db.BulkLoad("R", rows).ok());
  ASSERT_TRUE(db.Execute("ANALYZE R").ok());

  const char* q =
      "TEMPORAL SELECT G, T1, T2, COUNT(G) AS C FROM R "
      "GROUP BY G OVER TIME ORDER BY G, T1";
  auto run = [&](size_t budget) {
    Middleware::Config config = TestConfig();
    config.sort_memory_budget_bytes = budget;
    // Force the sort into the middleware so the budget matters.
    Middleware mw(&db, config);
    mw.cost_model().factors().sortd = 1e9;
    mw.cost_model().factors().taggd1 = 1e9;
    auto r = mw.Query(q);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ValueOrDie().rows;
  };
  const auto spilled = run(/*budget=*/8 * 1024);
  const auto in_memory = run(/*budget=*/64 << 20);
  ASSERT_EQ(spilled.size(), in_memory.size());
  for (size_t i = 0; i < spilled.size(); ++i) {
    for (size_t c = 0; c < spilled[i].size(); ++c) {
      EXPECT_EQ(spilled[i][c].Compare(in_memory[i][c]), 0) << i << "," << c;
    }
  }
}

}  // namespace
}  // namespace tango
