#include <gtest/gtest.h>

#include "common/date.h"
#include "workload/uis.h"

namespace tango {
namespace workload {
namespace {

TEST(UisTest, MatchesPublishedStatistics) {
  dbms::Engine db;
  UisOptions opts;
  opts.employee_rows = 5000;  // scaled for test speed; ratios still checked
  opts.position_rows = 8000;
  ASSERT_TRUE(LoadUis(&db, opts).ok());

  const dbms::Table* emp = db.catalog().GetTable("EMPLOYEE").ValueOrDie();
  const dbms::Table* pos = db.catalog().GetTable("POSITION").ValueOrDie();

  // 31 attributes, ~276 bytes per tuple (13.8 MB / 49,972 in the paper).
  EXPECT_EQ(emp->schema().num_columns(), 31u);
  EXPECT_NEAR(emp->file().avg_tuple_bytes(), 276, 60);
  // 8 attributes, ~80 bytes per tuple (6.7 MB / 83,857 in the paper).
  EXPECT_EQ(pos->schema().num_columns(), 8u);
  EXPECT_NEAR(pos->file().avg_tuple_bytes(), 80, 25);
  EXPECT_EQ(pos->file().num_tuples(), 8000u);
  EXPECT_TRUE(pos->stats().analyzed);
}

TEST(UisTest, TimeDistributionMatchesPaper) {
  auto rows = GeneratePositionRows(20000, 7);
  const int64_t jan95 = date::Jan1(1995);
  const int64_t jan92 = date::Jan1(1992);
  size_t after95 = 0, after92 = 0, valid = 0;
  for (const Tuple& t : rows) {
    const int64_t t1 = t[6].AsInt();
    const int64_t t2 = t[7].AsInt();
    if (t1 < t2) ++valid;
    if (t1 >= jan95) ++after95;
    if (t1 >= jan92) ++after92;
  }
  EXPECT_EQ(valid, rows.size());
  // "about 65% of the POSITION tuples have time-periods starting at 1995
  // or later".
  EXPECT_NEAR(static_cast<double>(after95) / rows.size(), 0.65, 0.03);
  // "most of the POSITION data is concentrated after 1992".
  EXPECT_GT(static_cast<double>(after92) / rows.size(), 0.75);
}

TEST(UisTest, PayRateSelectivity) {
  auto rows = GeneratePositionRows(20000, 7);
  size_t above10 = 0;
  for (const Tuple& t : rows) {
    EXPECT_GT(t[3].AsDouble(), 3.0);
    if (t[3].AsDouble() > 10.0) ++above10;
  }
  // The Query-2 predicate "pay rate greater than $10" is selective.
  const double sel = static_cast<double>(above10) / rows.size();
  EXPECT_GT(sel, 0.10);
  EXPECT_LT(sel, 0.45);
}

TEST(UisTest, DeterministicAcrossCalls) {
  auto a = GeneratePositionRows(500, 42);
  auto b = GeneratePositionRows(500, 42);
  auto c = GeneratePositionRows(500, 43);
  ASSERT_EQ(a.size(), b.size());
  bool all_equal = true;
  bool differs_from_c = false;
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = 0; j < a[i].size(); ++j) {
      if (a[i][j].Compare(b[i][j]) != 0) all_equal = false;
      if (a[i][j].Compare(c[i][j]) != 0) differs_from_c = true;
    }
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(differs_from_c);
}

TEST(UisTest, VariantIsPrefixConsistent) {
  dbms::Engine db;
  UisOptions opts;
  ASSERT_TRUE(LoadPositionVariant(&db, "POS_V", 3000, opts).ok());
  const dbms::Table* t = db.catalog().GetTable("POS_V").ValueOrDie();
  EXPECT_EQ(t->file().num_tuples(), 3000u);
  EXPECT_TRUE(t->stats().analyzed);
  // Variant carries the T1 index the experiments use.
  auto idx = t->schema().IndexOf("T1");
  ASSERT_TRUE(idx.ok());
  EXPECT_TRUE(t->HasIndex(idx.ValueOrDie()));
}

TEST(UniformRTest, MatchesSection33Setup) {
  dbms::Engine db;
  ASSERT_TRUE(LoadUniformR(&db, "R", 20000).ok());
  const dbms::Table* t = db.catalog().GetTable("R").ValueOrDie();
  EXPECT_EQ(t->file().num_tuples(), 20000u);
  const auto& stats = t->stats();
  // T1 range: Jan 1 1995 .. Dec 25 1999 (so T2 stays within Jan 1 2000).
  EXPECT_GE(stats.columns[2].min.AsInt(), date::Jan1(1995));
  EXPECT_LE(stats.columns[3].max.AsInt(), date::Jan1(2000));
  // Every period is exactly 7 days.
  auto it = t->file().Scan();
  Tuple row;
  while (it.Next(&row)) {
    ASSERT_EQ(row[3].AsInt() - row[2].AsInt(), 7);
  }
}

}  // namespace
}  // namespace workload
}  // namespace tango
