// Property tests on the middleware execution algorithms' invariants.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "exec/basic.h"
#include "exec/join.h"
#include "exec/sort.h"
#include "exec/taggr.h"

namespace tango {
namespace exec {
namespace {

Schema KeyedSchema() {
  return Schema({{"", "K", DataType::kInt},
                 {"", "T1", DataType::kInt},
                 {"", "T2", DataType::kInt}});
}

std::vector<Tuple> RandomPeriods(uint64_t seed, size_t n, int64_t keys,
                                 int64_t horizon) {
  Rng rng(seed);
  std::vector<Tuple> rows;
  for (size_t i = 0; i < n; ++i) {
    const int64_t t1 = rng.Uniform(0, horizon);
    rows.push_back(
        {Value(rng.Uniform(0, keys - 1)), Value(t1),
         Value(t1 + rng.Uniform(1, horizon / 3))});
  }
  return rows;
}

std::vector<Tuple> SortedForCoalesce(std::vector<Tuple> rows) {
  std::sort(rows.begin(), rows.end(), [](const Tuple& a, const Tuple& b) {
    if (int c = a[0].Compare(b[0]); c != 0) return c < 0;
    return a[1] < b[1];
  });
  return rows;
}

std::vector<Tuple> RunCoalesce(const std::vector<Tuple>& rows) {
  CoalesceCursor c(std::make_unique<VectorCursor>(KeyedSchema(), rows), 1, 2);
  return MaterializeAll(&c).ValueOrDie();
}

class CoalescePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CoalescePropertyTest, IdempotentAndSnapshotPreserving) {
  const auto input = SortedForCoalesce(RandomPeriods(GetParam(), 200, 5, 60));
  const auto once = RunCoalesce(input);
  const auto twice = RunCoalesce(once);

  // Idempotence: coal(coal(x)) == coal(x).
  ASSERT_EQ(twice.size(), once.size());
  for (size_t i = 0; i < once.size(); ++i) {
    for (size_t c = 0; c < once[i].size(); ++c) {
      EXPECT_EQ(twice[i][c].Compare(once[i][c]), 0) << i;
    }
  }

  // Snapshot preservation: the set of (key, day) memberships is unchanged.
  auto snapshot = [](const std::vector<Tuple>& rows) {
    std::set<std::pair<int64_t, int64_t>> days;
    for (const Tuple& t : rows) {
      for (int64_t d = t[1].AsInt(); d < t[2].AsInt(); ++d) {
        days.insert({t[0].AsInt(), d});
      }
    }
    return days;
  };
  EXPECT_EQ(snapshot(input), snapshot(once));

  // Maximality: within a key, consecutive coalesced periods have gaps.
  for (size_t i = 1; i < once.size(); ++i) {
    if (once[i][0].Compare(once[i - 1][0]) == 0) {
      EXPECT_GT(once[i][1].AsInt(), once[i - 1][2].AsInt())
          << "period " << i << " should have been merged";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoalescePropertyTest,
                         ::testing::Values(4, 9, 16, 25, 36));

class SortBudgetPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SortBudgetPropertyTest, AnyBudgetMatchesStdSort) {
  auto rows = RandomPeriods(123, 3000, 50, 500);
  auto expected = rows;
  std::stable_sort(expected.begin(), expected.end(),
                   [](const Tuple& a, const Tuple& b) {
                     if (int c = a[0].Compare(b[0]); c != 0) return c < 0;
                     return a[1] < b[1];
                   });
  SortCursor sort(std::make_unique<VectorCursor>(KeyedSchema(), rows),
                  {{0, true}, {1, true}}, GetParam());
  auto got = MaterializeAll(&sort).ValueOrDie();
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i][0].AsInt(), expected[i][0].AsInt()) << i;
    EXPECT_EQ(got[i][1].AsInt(), expected[i][1].AsInt()) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Budgets, SortBudgetPropertyTest,
                         ::testing::Values(1 << 12, 1 << 15, 1 << 19,
                                           64 << 20));

TEST(TemporalJoinPropertyTest, CommutesUpToColumnOrder) {
  const auto a = SortedForCoalesce(RandomPeriods(77, 150, 6, 80));
  const auto b = SortedForCoalesce(RandomPeriods(88, 120, 6, 80));
  Schema out_ab({{"", "K", DataType::kInt},
                 {"", "T1", DataType::kInt},
                 {"", "T2", DataType::kInt}});
  auto run = [&](const std::vector<Tuple>& l, const std::vector<Tuple>& r) {
    TemporalJoinCursor j(std::make_unique<VectorCursor>(KeyedSchema(), l),
                         std::make_unique<VectorCursor>(KeyedSchema(), r),
                         {0}, {0}, 1, 2, 1, 2, /*left_out=*/{0},
                         /*right_out=*/{}, out_ab);
    return MaterializeAll(&j).ValueOrDie();
  };
  auto ab = run(a, b);
  auto ba = run(b, a);
  // Same multiset of (key, intersected period) rows.
  auto canon = [](const std::vector<Tuple>& rows) {
    std::multiset<std::string> out;
    for (const Tuple& t : rows) {
      out.insert(t[0].ToString() + "/" + t[1].ToString() + "/" +
                 t[2].ToString());
    }
    return out;
  };
  EXPECT_FALSE(ab.empty());
  EXPECT_EQ(canon(ab), canon(ba));
}

TEST(TAggrPropertyTest, CountMatchesSumOfStarWeights) {
  // COUNT(K) with no NULLs equals COUNT(*) everywhere; MIN <= AVG <= MAX.
  auto rows = SortedForCoalesce(RandomPeriods(55, 300, 4, 100));
  Schema out({{"", "K", DataType::kInt},
              {"", "T1", DataType::kInt},
              {"", "T2", DataType::kInt},
              {"", "C1", DataType::kInt},
              {"", "C2", DataType::kInt},
              {"", "MN", DataType::kInt},
              {"", "AV", DataType::kDouble},
              {"", "MX", DataType::kInt}});
  TemporalAggregationCursor agg(
      std::make_unique<VectorCursor>(KeyedSchema(), rows), {0}, 1, 2,
      {{AggFunc::kCount, 0, false},
       {AggFunc::kCount, 0, true},
       {AggFunc::kMin, 1, false},
       {AggFunc::kAvg, 1, false},
       {AggFunc::kMax, 1, false}},
      out);
  auto got = MaterializeAll(&agg).ValueOrDie();
  ASSERT_FALSE(got.empty());
  for (const Tuple& t : got) {
    EXPECT_EQ(t[3].AsInt(), t[4].AsInt());
    EXPECT_LE(t[5].AsDouble(), t[6].AsDouble() + 1e-9);
    EXPECT_LE(t[6].AsDouble(), t[7].AsDouble() + 1e-9);
  }
}

TEST(DifferencePropertyTest, SelfDifferenceIsEmptyAndEmptyIsIdentity) {
  auto rows = SortedForCoalesce(RandomPeriods(66, 100, 4, 60));
  auto sorted_all = rows;
  std::sort(sorted_all.begin(), sorted_all.end(),
            [](const Tuple& a, const Tuple& b) {
              for (size_t i = 0; i < a.size(); ++i) {
                if (int c = a[i].Compare(b[i]); c != 0) return c < 0;
              }
              return false;
            });
  {
    DifferenceCursor d(
        std::make_unique<VectorCursor>(KeyedSchema(), sorted_all),
        std::make_unique<VectorCursor>(KeyedSchema(), sorted_all));
    EXPECT_TRUE(MaterializeAll(&d).ValueOrDie().empty());
  }
  {
    DifferenceCursor d(
        std::make_unique<VectorCursor>(KeyedSchema(), sorted_all),
        std::make_unique<VectorCursor>(KeyedSchema(), std::vector<Tuple>{}));
    EXPECT_EQ(MaterializeAll(&d).ValueOrDie().size(), sorted_all.size());
  }
}

TEST(CursorReinitTest, AlgorithmsAreReExecutable) {
  // Figure 2's engine calls init() once, but re-execution must be safe —
  // a prepared plan can be run twice.
  auto rows = SortedForCoalesce(RandomPeriods(44, 120, 4, 60));
  Schema out({{"", "K", DataType::kInt},
              {"", "T1", DataType::kInt},
              {"", "T2", DataType::kInt},
              {"", "C", DataType::kInt}});
  TemporalAggregationCursor agg(
      std::make_unique<VectorCursor>(KeyedSchema(), rows), {0}, 1, 2,
      {{AggFunc::kCount, 0, true}}, out);
  const auto first = MaterializeAll(&agg).ValueOrDie();
  const auto second = MaterializeAll(&agg).ValueOrDie();
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    for (size_t c = 0; c < first[i].size(); ++c) {
      EXPECT_EQ(first[i][c].Compare(second[i][c]), 0);
    }
  }

  SortCursor sort(std::make_unique<VectorCursor>(KeyedSchema(), rows),
                  {{1, true}}, /*memory_budget_bytes=*/2048);
  const auto s1 = MaterializeAll(&sort).ValueOrDie();
  const auto s2 = MaterializeAll(&sort).ValueOrDie();
  EXPECT_EQ(s1.size(), s2.size());
}

}  // namespace
}  // namespace exec
}  // namespace tango
