// Property tests on the middleware execution algorithms' invariants.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "exec/basic.h"
#include "exec/join.h"
#include "exec/parallel.h"
#include "exec/sort.h"
#include "exec/taggr.h"
#include "expr/expr.h"

namespace tango {
namespace exec {
namespace {

Schema KeyedSchema() {
  return Schema({{"", "K", DataType::kInt},
                 {"", "T1", DataType::kInt},
                 {"", "T2", DataType::kInt}});
}

std::vector<Tuple> RandomPeriods(uint64_t seed, size_t n, int64_t keys,
                                 int64_t horizon) {
  Rng rng(seed);
  std::vector<Tuple> rows;
  for (size_t i = 0; i < n; ++i) {
    const int64_t t1 = rng.Uniform(0, horizon);
    rows.push_back(
        {Value(rng.Uniform(0, keys - 1)), Value(t1),
         Value(t1 + rng.Uniform(1, horizon / 3))});
  }
  return rows;
}

std::vector<Tuple> SortedForCoalesce(std::vector<Tuple> rows) {
  std::sort(rows.begin(), rows.end(), [](const Tuple& a, const Tuple& b) {
    if (int c = a[0].Compare(b[0]); c != 0) return c < 0;
    return a[1] < b[1];
  });
  return rows;
}

std::vector<Tuple> RunCoalesce(const std::vector<Tuple>& rows) {
  CoalesceCursor c(std::make_unique<VectorCursor>(KeyedSchema(), rows), 1, 2);
  return MaterializeAll(&c).ValueOrDie();
}

class CoalescePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CoalescePropertyTest, IdempotentAndSnapshotPreserving) {
  const auto input = SortedForCoalesce(RandomPeriods(GetParam(), 200, 5, 60));
  const auto once = RunCoalesce(input);
  const auto twice = RunCoalesce(once);

  // Idempotence: coal(coal(x)) == coal(x).
  ASSERT_EQ(twice.size(), once.size());
  for (size_t i = 0; i < once.size(); ++i) {
    for (size_t c = 0; c < once[i].size(); ++c) {
      EXPECT_EQ(twice[i][c].Compare(once[i][c]), 0) << i;
    }
  }

  // Snapshot preservation: the set of (key, day) memberships is unchanged.
  auto snapshot = [](const std::vector<Tuple>& rows) {
    std::set<std::pair<int64_t, int64_t>> days;
    for (const Tuple& t : rows) {
      for (int64_t d = t[1].AsInt(); d < t[2].AsInt(); ++d) {
        days.insert({t[0].AsInt(), d});
      }
    }
    return days;
  };
  EXPECT_EQ(snapshot(input), snapshot(once));

  // Maximality: within a key, consecutive coalesced periods have gaps.
  for (size_t i = 1; i < once.size(); ++i) {
    if (once[i][0].Compare(once[i - 1][0]) == 0) {
      EXPECT_GT(once[i][1].AsInt(), once[i - 1][2].AsInt())
          << "period " << i << " should have been merged";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoalescePropertyTest,
                         ::testing::Values(4, 9, 16, 25, 36));

class SortBudgetPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SortBudgetPropertyTest, AnyBudgetMatchesStdSort) {
  auto rows = RandomPeriods(123, 3000, 50, 500);
  auto expected = rows;
  std::stable_sort(expected.begin(), expected.end(),
                   [](const Tuple& a, const Tuple& b) {
                     if (int c = a[0].Compare(b[0]); c != 0) return c < 0;
                     return a[1] < b[1];
                   });
  SortCursor sort(std::make_unique<VectorCursor>(KeyedSchema(), rows),
                  {{0, true}, {1, true}}, GetParam());
  auto got = MaterializeAll(&sort).ValueOrDie();
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i][0].AsInt(), expected[i][0].AsInt()) << i;
    EXPECT_EQ(got[i][1].AsInt(), expected[i][1].AsInt()) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Budgets, SortBudgetPropertyTest,
                         ::testing::Values(1 << 12, 1 << 15, 1 << 19,
                                           64 << 20));

TEST(TemporalJoinPropertyTest, CommutesUpToColumnOrder) {
  const auto a = SortedForCoalesce(RandomPeriods(77, 150, 6, 80));
  const auto b = SortedForCoalesce(RandomPeriods(88, 120, 6, 80));
  Schema out_ab({{"", "K", DataType::kInt},
                 {"", "T1", DataType::kInt},
                 {"", "T2", DataType::kInt}});
  auto run = [&](const std::vector<Tuple>& l, const std::vector<Tuple>& r) {
    TemporalJoinCursor j(std::make_unique<VectorCursor>(KeyedSchema(), l),
                         std::make_unique<VectorCursor>(KeyedSchema(), r),
                         {0}, {0}, 1, 2, 1, 2, /*left_out=*/{0},
                         /*right_out=*/{}, out_ab);
    return MaterializeAll(&j).ValueOrDie();
  };
  auto ab = run(a, b);
  auto ba = run(b, a);
  // Same multiset of (key, intersected period) rows.
  auto canon = [](const std::vector<Tuple>& rows) {
    std::multiset<std::string> out;
    for (const Tuple& t : rows) {
      out.insert(t[0].ToString() + "/" + t[1].ToString() + "/" +
                 t[2].ToString());
    }
    return out;
  };
  EXPECT_FALSE(ab.empty());
  EXPECT_EQ(canon(ab), canon(ba));
}

TEST(TAggrPropertyTest, CountMatchesSumOfStarWeights) {
  // COUNT(K) with no NULLs equals COUNT(*) everywhere; MIN <= AVG <= MAX.
  auto rows = SortedForCoalesce(RandomPeriods(55, 300, 4, 100));
  Schema out({{"", "K", DataType::kInt},
              {"", "T1", DataType::kInt},
              {"", "T2", DataType::kInt},
              {"", "C1", DataType::kInt},
              {"", "C2", DataType::kInt},
              {"", "MN", DataType::kInt},
              {"", "AV", DataType::kDouble},
              {"", "MX", DataType::kInt}});
  TemporalAggregationCursor agg(
      std::make_unique<VectorCursor>(KeyedSchema(), rows), {0}, 1, 2,
      {{AggFunc::kCount, 0, false},
       {AggFunc::kCount, 0, true},
       {AggFunc::kMin, 1, false},
       {AggFunc::kAvg, 1, false},
       {AggFunc::kMax, 1, false}},
      out);
  auto got = MaterializeAll(&agg).ValueOrDie();
  ASSERT_FALSE(got.empty());
  for (const Tuple& t : got) {
    EXPECT_EQ(t[3].AsInt(), t[4].AsInt());
    EXPECT_LE(t[5].AsDouble(), t[6].AsDouble() + 1e-9);
    EXPECT_LE(t[6].AsDouble(), t[7].AsDouble() + 1e-9);
  }
}

TEST(DifferencePropertyTest, SelfDifferenceIsEmptyAndEmptyIsIdentity) {
  auto rows = SortedForCoalesce(RandomPeriods(66, 100, 4, 60));
  auto sorted_all = rows;
  std::sort(sorted_all.begin(), sorted_all.end(),
            [](const Tuple& a, const Tuple& b) {
              for (size_t i = 0; i < a.size(); ++i) {
                if (int c = a[i].Compare(b[i]); c != 0) return c < 0;
              }
              return false;
            });
  {
    DifferenceCursor d(
        std::make_unique<VectorCursor>(KeyedSchema(), sorted_all),
        std::make_unique<VectorCursor>(KeyedSchema(), sorted_all));
    EXPECT_TRUE(MaterializeAll(&d).ValueOrDie().empty());
  }
  {
    DifferenceCursor d(
        std::make_unique<VectorCursor>(KeyedSchema(), sorted_all),
        std::make_unique<VectorCursor>(KeyedSchema(), std::vector<Tuple>{}));
    EXPECT_EQ(MaterializeAll(&d).ValueOrDie().size(), sorted_all.size());
  }
}

TEST(CursorReinitTest, AlgorithmsAreReExecutable) {
  // Figure 2's engine calls init() once, but re-execution must be safe —
  // a prepared plan can be run twice.
  auto rows = SortedForCoalesce(RandomPeriods(44, 120, 4, 60));
  Schema out({{"", "K", DataType::kInt},
              {"", "T1", DataType::kInt},
              {"", "T2", DataType::kInt},
              {"", "C", DataType::kInt}});
  TemporalAggregationCursor agg(
      std::make_unique<VectorCursor>(KeyedSchema(), rows), {0}, 1, 2,
      {{AggFunc::kCount, 0, true}}, out);
  const auto first = MaterializeAll(&agg).ValueOrDie();
  const auto second = MaterializeAll(&agg).ValueOrDie();
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    for (size_t c = 0; c < first[i].size(); ++c) {
      EXPECT_EQ(first[i][c].Compare(second[i][c]), 0);
    }
  }

  SortCursor sort(std::make_unique<VectorCursor>(KeyedSchema(), rows),
                  {{1, true}}, /*memory_budget_bytes=*/2048);
  const auto s1 = MaterializeAll(&sort).ValueOrDie();
  const auto s2 = MaterializeAll(&sort).ValueOrDie();
  EXPECT_EQ(s1.size(), s2.size());
}

// ---------------------------------------------------------------------------
// Batch/tuple differential harness: for every operator, draining via
// NextBatch (at several block capacities, including degenerate ones) must
// produce the exact row sequence the tuple-at-a-time drain produces. The
// same cursor object is drained repeatedly, which also exercises re-Init.

std::vector<Tuple> DrainTuple(Cursor* c) {
  EXPECT_TRUE(c->Init().ok());
  std::vector<Tuple> rows;
  Tuple t;
  while (true) {
    auto more = c->Next(&t);
    EXPECT_TRUE(more.ok()) << more.status().ToString();
    if (!more.ok() || !more.ValueOrDie()) break;
    rows.push_back(t);
  }
  return rows;
}

std::vector<Tuple> DrainBatch(Cursor* c, size_t capacity) {
  EXPECT_TRUE(c->Init().ok());
  std::vector<Tuple> rows;
  RowBlock block(capacity);
  Tuple t;
  while (true) {
    auto n = c->NextBatch(&block);
    EXPECT_TRUE(n.ok()) << n.status().ToString();
    if (!n.ok() || n.ValueOrDie() == 0) break;
    for (size_t i = 0; i < n.ValueOrDie(); ++i) {
      block.MoveRowTo(i, &t);
      rows.push_back(std::move(t));
    }
  }
  return rows;
}

void ExpectSameRows(const std::vector<Tuple>& want,
                    const std::vector<Tuple>& got, const std::string& what) {
  ASSERT_EQ(want.size(), got.size()) << what;
  for (size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(want[i].size(), got[i].size()) << what << " row " << i;
    for (size_t c = 0; c < want[i].size(); ++c) {
      ASSERT_EQ(want[i][c].Compare(got[i][c]), 0)
          << what << " row " << i << " col " << c;
    }
  }
}

/// Drains `cursor` tuple-at-a-time, then batched at capacities 1/2/7/1024,
/// asserting bit-identical output every time.
void RunDifferential(Cursor* cursor, const std::string& what) {
  const auto want = DrainTuple(cursor);
  for (const size_t capacity : {size_t{1}, size_t{2}, size_t{7},
                                RowBlock::kDefaultCapacity}) {
    const auto got = DrainBatch(cursor, capacity);
    ExpectSameRows(want, got,
                   what + " @capacity=" + std::to_string(capacity));
  }
  // Mixing row and batch calls between Inits must also replay identically.
  const auto again = DrainTuple(cursor);
  ExpectSameRows(want, again, what + " re-drained tuple-at-a-time");
}

CursorPtr KeyedVector(std::vector<Tuple> rows) {
  return std::make_unique<VectorCursor>(KeyedSchema(), std::move(rows));
}

TEST(BatchDifferentialTest, FilterCursor) {
  auto pred = Bind(Expr::Binary(BinaryOp::kLt, Expr::ColumnRef("T1"),
                                Expr::Int(30)),
                   KeyedSchema())
                  .ValueOrDie();
  FilterCursor f(KeyedVector(RandomPeriods(91, 500, 8, 80)), pred);
  RunDifferential(&f, "FILTER^M");
  // An all-rejecting filter must terminate the batch drain with zero.
  auto none = Bind(Expr::Binary(BinaryOp::kLt, Expr::ColumnRef("T1"),
                                Expr::Int(-1)),
                   KeyedSchema())
                  .ValueOrDie();
  FilterCursor empty(KeyedVector(RandomPeriods(91, 100, 8, 80)), none);
  RunDifferential(&empty, "FILTER^M(empty)");
}

TEST(BatchDifferentialTest, ProjectCursor) {
  Schema out({{"", "K", DataType::kInt}, {"", "DUR", DataType::kInt}});
  auto k = Bind(Expr::ColumnRef("K"), KeyedSchema()).ValueOrDie();
  auto dur = Bind(Expr::Binary(BinaryOp::kSub, Expr::ColumnRef("T2"),
                               Expr::ColumnRef("T1")),
                  KeyedSchema())
                 .ValueOrDie();
  ProjectCursor p(KeyedVector(RandomPeriods(92, 400, 6, 70)), {k, dur}, out);
  RunDifferential(&p, "PROJECT^M");
}

TEST(BatchDifferentialTest, SortCursorInMemoryAndSpilled) {
  const auto rows = RandomPeriods(93, 800, 10, 90);
  SortCursor in_mem(KeyedVector(rows), {{0, true}, {1, true}});
  RunDifferential(&in_mem, "SORT^M(in-memory)");
  SortCursor spilled(KeyedVector(rows), {{0, true}, {1, true}},
                     /*memory_budget_bytes=*/4096);
  RunDifferential(&spilled, "SORT^M(spilled)");
}

TEST(BatchDifferentialTest, DupElimAndDifferenceAndCoalesce) {
  auto sorted = SortedForCoalesce(RandomPeriods(94, 300, 5, 60));
  DupElimCursor dup(KeyedVector(sorted));
  RunDifferential(&dup, "DUPELIM^M");

  auto all_sorted = sorted;
  std::sort(all_sorted.begin(), all_sorted.end(),
            [](const Tuple& a, const Tuple& b) {
              for (size_t i = 0; i < a.size(); ++i) {
                if (int c = a[i].Compare(b[i]); c != 0) return c < 0;
              }
              return false;
            });
  std::vector<Tuple> half(all_sorted.begin(),
                          all_sorted.begin() + all_sorted.size() / 2);
  DifferenceCursor diff(KeyedVector(all_sorted), KeyedVector(half));
  RunDifferential(&diff, "DIFF^M");

  CoalesceCursor coal(KeyedVector(sorted), 1, 2);
  RunDifferential(&coal, "COALESCE^M");
}

TEST(BatchDifferentialTest, MergeAndTemporalJoin) {
  auto left = SortedForCoalesce(RandomPeriods(95, 250, 6, 70));
  auto right = SortedForCoalesce(RandomPeriods(96, 200, 6, 70));
  MergeJoinCursor mj(KeyedVector(left), KeyedVector(right), {0}, {0});
  RunDifferential(&mj, "MERGEJOIN^M");

  Schema out({{"", "K", DataType::kInt},
              {"", "T1", DataType::kInt},
              {"", "T2", DataType::kInt}});
  TemporalJoinCursor tj(KeyedVector(left), KeyedVector(right), {0}, {0}, 1, 2,
                        1, 2, /*left_out=*/{0}, /*right_out=*/{}, out);
  RunDifferential(&tj, "TJOIN^M");
}

TEST(BatchDifferentialTest, TemporalAggregation) {
  auto rows = SortedForCoalesce(RandomPeriods(97, 350, 4, 80));
  Schema out({{"", "K", DataType::kInt},
              {"", "T1", DataType::kInt},
              {"", "T2", DataType::kInt},
              {"", "C", DataType::kInt}});
  TemporalAggregationCursor agg(KeyedVector(rows), {0}, 1, 2,
                                {{AggFunc::kCount, 0, true}}, out);
  RunDifferential(&agg, "TAGGR^M");
}

TEST(BatchDifferentialTest, ParallelSortAndJoinAndPrefetch) {
  auto pool = std::make_shared<common::ThreadPool>(3);
  const auto rows = RandomPeriods(98, 900, 12, 100);
  ParallelSortCursor psort(KeyedVector(rows), {{0, true}, {1, true}}, pool,
                           /*memory_budget_bytes=*/16384, /*dop=*/3);
  RunDifferential(&psort, "parallel SORT^M");

  auto left = SortedForCoalesce(RandomPeriods(99, 300, 6, 80));
  auto right = SortedForCoalesce(RandomPeriods(100, 250, 6, 80));
  Schema out({{"", "K", DataType::kInt},
              {"", "T1", DataType::kInt},
              {"", "T2", DataType::kInt}});
  ParallelTemporalJoinCursor pjoin(KeyedVector(left), KeyedVector(right), {0},
                                   {0}, 1, 2, 1, 2, /*left_out=*/{0},
                                   /*right_out=*/{}, out, pool, /*dop=*/3);
  RunDifferential(&pjoin, "parallel TJOIN^M");

  PrefetchCursor prefetch(KeyedVector(RandomPeriods(101, 700, 5, 90)),
                          /*batch_rows=*/64, /*max_batches=*/3);
  RunDifferential(&prefetch, "prefetch drain");
}

TEST(VectorCursorTest, ReusableReplaysAfterDrainOneShotDoesNot) {
  const auto rows = RandomPeriods(102, 50, 4, 40);
  VectorCursor reusable(KeyedSchema(), rows);  // Drain::kReusable default
  const auto first = DrainTuple(&reusable);
  const auto second = DrainBatch(&reusable, 7);
  ExpectSameRows(first, second, "reusable VectorCursor re-Init replay");
  ASSERT_EQ(first.size(), rows.size());

  // kOneShot moves rows out: the first drain delivers everything, and the
  // contract is that the cursor is not re-Init'ed afterwards.
  VectorCursor one_shot(KeyedSchema(), rows, VectorCursor::Drain::kOneShot);
  const auto moved = DrainTuple(&one_shot);
  ExpectSameRows(first, moved, "one-shot VectorCursor first drain");
}

}  // namespace
}  // namespace exec
}  // namespace tango
