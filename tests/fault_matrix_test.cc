// The fault matrix (robustness contract of the middleware<->DBMS boundary):
// for representative queries, every statement index x every fault kind must
// yield either the correct result after retries or a clean transient error —
// never kInternal, never a crash, never a leaked temp table that the sweep
// cannot reclaim. Runs under ASan/TSan via scripts/check.sh.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/rng.h"
#include "tango/middleware.h"

namespace tango {
namespace {

struct RandomRelation {
  std::vector<Tuple> rows;  // (G, V, T1, T2)
};

RandomRelation MakeRelation(uint64_t seed, size_t n, int64_t groups,
                            int64_t horizon) {
  Rng rng(seed);
  RandomRelation rel;
  for (size_t i = 0; i < n; ++i) {
    const int64_t t1 = rng.Uniform(0, horizon);
    rel.rows.push_back({Value(rng.Uniform(1, groups)),
                        Value(rng.Uniform(0, 50)), Value(t1),
                        Value(t1 + rng.Uniform(1, horizon / 4))});
  }
  return rel;
}

void Load(dbms::Engine* db, const std::string& table,
          const RandomRelation& rel) {
  ASSERT_TRUE(
      db->Execute("CREATE TABLE " + table + " (G INT, V INT, T1 INT, T2 INT)")
          .ok());
  ASSERT_TRUE(db->BulkLoad(table, rel.rows).ok());
  ASSERT_TRUE(db->Execute("ANALYZE " + table).ok());
}

// Degradation off: the matrix wants crisp succeed-or-transient outcomes.
// (Degraded fallbacks are exercised in recovery_test.cc.) Adaptation off:
// feedback would drift the plan shape mid-matrix and change the statement
// numbering between runs.
Middleware::Config MatrixConfig() {
  Middleware::Config config;
  config.wire.simulate_delay = false;
  config.adapt = false;
  config.degrade_on_failure = false;
  return config;
}

std::multiset<std::string> RowSet(const Middleware::Execution& exec) {
  std::multiset<std::string> rows;
  for (const Tuple& t : exec.rows) {
    std::string s;
    for (const Value& v : t) s += v.ToString() + "|";
    rows.insert(std::move(s));
  }
  return rows;
}

bool CatalogHasTempTables(dbms::Engine* db) {
  for (const std::string& t : db->catalog().TableNames()) {
    if (t.find("TANGO_TMP") != std::string::npos) return true;
  }
  return false;
}

// Runs `sql` under every (fault kind, statement index) cell, twice: once
// with times=1 (must recover to the baseline rows) and once with times
// beyond any retry budget (must fail with a transient code or still
// succeed when the faulted statement has no cursor to kill / the spike
// meets no deadline).
void RunMatrix(dbms::Engine* db, const std::string& sql,
               void (*tweak)(cost::CostFactors*)) {
  auto injector = std::make_shared<dbms::FaultInjector>();
  Middleware mw(db, MatrixConfig());
  if (tweak != nullptr) tweak(&mw.cost_model().factors());
  mw.connection().set_fault_injector(injector);

  // Baseline: a disarmed injector still numbers the statements, giving the
  // matrix its width N and the expected rows.
  injector->Arm(dbms::FaultPlan{});
  auto baseline = mw.Query(sql);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  const std::multiset<std::string> expected = RowSet(baseline.ValueOrDie());
  const uint64_t n_statements = injector->statements_seen();
  ASSERT_GT(n_statements, 0u);
  ASSERT_FALSE(CatalogHasTempTables(db));
  EXPECT_GT(mw.connection().counters().bytes_to_client, 0u);
  EXPECT_GT(mw.connection().counters().statements, 0u);

  const dbms::FaultKind kinds[] = {
      dbms::FaultKind::kStatementFail, dbms::FaultKind::kCursorKill,
      dbms::FaultKind::kWireTruncate, dbms::FaultKind::kWireCorrupt,
      dbms::FaultKind::kLatencySpike};

  for (dbms::FaultKind kind : kinds) {
    for (uint64_t idx = 0; idx < n_statements; ++idx) {
      for (const int times : {1, 1000}) {
        dbms::FaultPlan plan;
        plan.kind = kind;
        plan.statement_index = idx;
        plan.times = times;
        plan.latency_seconds = 1e-3;  // keep spike cells fast
        plan.seed = 0xfa017 + idx * 31 + static_cast<uint64_t>(kind);
        injector->Arm(plan);

        auto r = mw.Query(sql);
        const std::string cell = std::string(dbms::FaultKindName(kind)) +
                                 " @stmt " + std::to_string(idx) +
                                 " x" + std::to_string(times);

        if (times == 1) {
          // One firing is always within the retry budget: the query must
          // come back with exactly the baseline rows. (Cursor faults armed
          // on a statement with no result cursor simply never fire.)
          ASSERT_TRUE(r.ok()) << cell << ": " << r.status().ToString();
          EXPECT_EQ(RowSet(r.ValueOrDie()), expected) << cell;
        } else if (r.ok()) {
          // Beyond-budget cells may still succeed when the fault found
          // nothing to bite (no cursor at this index, spike without a
          // deadline) — but then the rows must be right.
          EXPECT_EQ(RowSet(r.ValueOrDie()), expected) << cell;
        } else {
          // The failure contract: a clean transient code, never an
          // internal error or a garbled-data crash.
          EXPECT_TRUE(IsTransientCode(r.status().code()))
              << cell << ": " << r.status().ToString();
        }

        injector->Disarm();
        // Cleanup guarantee: the janitor drops every temp table unless the
        // fault was hitting the drops themselves; those leaks are counted
        // and the orphan sweep reclaims them.
        if (CatalogHasTempTables(db)) {
          EXPECT_EQ(kind, dbms::FaultKind::kStatementFail) << cell;
          EXPECT_GT(mw.recovery_counters().temp_tables_leaked.load(), 0u)
              << cell;
          ASSERT_TRUE(mw.SweepOrphanTempTables().ok()) << cell;
        }
        ASSERT_FALSE(CatalogHasTempTables(db)) << cell;
      }
    }
  }

  // The wire counters survived the whole matrix (attempted statements are
  // paced and counted too, so the totals only ever grow).
  EXPECT_GT(mw.connection().counters().statements, n_statements);
  EXPECT_GT(mw.connection().counters().bytes_to_client, 0u);
}

TEST(FaultMatrixTest, Query1TemporalAggregation) {
  dbms::Engine db;
  Load(&db, "R", MakeRelation(7, 150, 6, 60));
  RunMatrix(&db,
            "TEMPORAL SELECT G, T1, T2, COUNT(G) AS CNT FROM R "
            "GROUP BY G OVER TIME ORDER BY G, T1",
            nullptr);
}

TEST(FaultMatrixTest, Query2TemporalJoin) {
  dbms::Engine db;
  Load(&db, "RA", MakeRelation(11, 120, 5, 50));
  Load(&db, "RB", MakeRelation(11 ^ 0xbeef, 100, 5, 50));
  RunMatrix(&db,
            "TEMPORAL SELECT X.G, X.V, Y.V FROM RA X, RB Y "
            "WHERE X.G = Y.G ORDER BY G",
            nullptr);
}

TEST(FaultMatrixTest, Query3AggregationJoinWithTransferD) {
  // Cost factors force the aggregate into the middleware and the join into
  // the DBMS, so the plan must ship the aggregate down through TRANSFER^D —
  // putting the temp-table CREATE / BULKLOAD / DROP statements into the
  // matrix alongside the SELECTs.
  dbms::Engine db;
  Load(&db, "R", MakeRelation(23, 150, 6, 60));
  RunMatrix(&db,
            "TEMPORAL SELECT C.G, V, CNT FROM "
            "(TEMPORAL SELECT G, COUNT(G) AS CNT FROM R "
            "GROUP BY G OVER TIME) C, R S WHERE C.G = S.G ORDER BY G",
            [](cost::CostFactors* f) {
              f->tjm = f->mjm = 1e9;      // no middleware join
              f->taggd1 = f->taggd2 = 1e9;  // no DBMS aggregation
            });
}

TEST(FaultMatrixTest, Query4CoalescedAggregation) {
  dbms::Engine db;
  Load(&db, "R", MakeRelation(31, 150, 6, 60));
  RunMatrix(&db,
            "TEMPORAL SELECT COALESCE G, CNT FROM "
            "(TEMPORAL SELECT G, COUNT(G) AS CNT FROM R "
            "GROUP BY G OVER TIME) C ORDER BY G, T1",
            nullptr);
}

}  // namespace
}  // namespace tango
