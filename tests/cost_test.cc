#include <gtest/gtest.h>

#include "cost/cost_model.h"
#include "sql/parser.h"

namespace tango {
namespace cost {
namespace {

ExprPtr Pred(const std::string& text) {
  return sql::Parser::ParseSelect("SELECT X FROM T WHERE " + text)
      .ValueOrDie()
      ->where;
}

TEST(CostModelTest, Figure6FormulasScaleWithSize) {
  CostModel m;
  // Transfers: linear in size(r) plus the statement round trip.
  EXPECT_GT(m.TransferM(1000), m.factors().stmt);
  EXPECT_NEAR(m.TransferM(2000) - m.TransferM(1000),
              m.factors().tm * 1000, 1e-9);
  EXPECT_NEAR(m.TransferD(2000) - m.TransferD(1000),
              m.factors().td * 1000, 1e-9);
  // Selection: linear in size and in f(P).
  EXPECT_DOUBLE_EQ(m.FilterM(2, 1000), 2 * m.FilterM(1, 1000));
  // Temporal aggregation: both input and output terms.
  EXPECT_GT(m.TAggrM(1000, 2000), m.TAggrM(1000, 100));
  EXPECT_GT(m.TAggrD(1000, 100), 0);
  // Selection / projection in the DBMS are free (§3.1).
  EXPECT_DOUBLE_EQ(m.SelectD(), 0);
  EXPECT_DOUBLE_EQ(m.ProjectD(), 0);
}

TEST(CostModelTest, DefaultsEncodeThePapersAsymmetry) {
  CostModel m;
  // The reason Query 1 behaves as it does: per byte, temporal aggregation
  // is far cheaper in the middleware than via the DBMS's SQL formulation.
  EXPECT_GT(m.TAggrD(1e6, 1e6), 5 * m.TAggrM(1e6, 1e6));
}

TEST(CostModelTest, SortCostsGrowLogLinearly) {
  CostModel m;
  const double s1 = m.SortM(1e6, 1e4);
  const double s2 = m.SortM(2e6, 2e4);
  EXPECT_GT(s2, 2 * s1);           // superlinear
  EXPECT_LT(s2, 2.5 * s1);         // but only by the log factor
  EXPECT_GT(m.SortM(1e6, 1e4), m.SortD(1e6, 1e4) * 0.5);  // same order
  // Degenerate cardinalities do not produce zero/negative costs.
  EXPECT_GT(m.SortM(100, 1), 0);
  EXPECT_GT(m.SortD(100, 0), 0);
}

TEST(CostModelTest, PredicateCoefficientCountsComparisons) {
  EXPECT_DOUBLE_EQ(CostModel::PredicateCoefficient(nullptr), 0);
  EXPECT_DOUBLE_EQ(CostModel::PredicateCoefficient(Pred("A = 1")), 1);
  EXPECT_DOUBLE_EQ(
      CostModel::PredicateCoefficient(Pred("A = 1 AND B < 2 AND C > 3")), 3);
  EXPECT_DOUBLE_EQ(
      CostModel::PredicateCoefficient(Pred("A = 1 OR (B < 2 AND C > 3)")), 3);
  EXPECT_DOUBLE_EQ(CostModel::PredicateCoefficient(Pred("NOT A = 1")), 1);
}

TEST(CostModelTest, FeedbackMovesFactorTowardObservation) {
  double factor = 1.0;
  // Observed 2 us/byte, alpha 0.5 -> midpoint.
  CostModel::Feedback(&factor, /*observed_us=*/2000, /*size=*/1000, 0.5);
  EXPECT_DOUBLE_EQ(factor, 1.5);
  // Converges to the observed ratio under repetition.
  for (int i = 0; i < 50; ++i) {
    CostModel::Feedback(&factor, 2000, 1000, 0.5);
  }
  EXPECT_NEAR(factor, 2.0, 1e-6);
  // Degenerate observations leave the factor untouched.
  CostModel::Feedback(&factor, 0, 1000, 0.5);
  CostModel::Feedback(&factor, 1000, 0, 0.5);
  EXPECT_NEAR(factor, 2.0, 1e-6);
}

TEST(CostModelTest, FactorsRenderForLogs) {
  CostModel m;
  const std::string s = m.factors().ToString();
  EXPECT_NE(s.find("p_tm"), std::string::npos);
  EXPECT_NE(s.find("p_taggd1"), std::string::npos);
}

}  // namespace
}  // namespace cost
}  // namespace tango
