#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "cost/calibrate.h"
#include "dbms/engine.h"

namespace tango {
namespace cost {
namespace {

TEST(CalibratorTest, FitsPositiveFactorsAndCleansUp) {
  dbms::Engine db;
  dbms::WireConfig wire;
  wire.simulate_delay = false;
  dbms::Connection conn(&db, wire);

  Calibrator::Options opts;
  opts.probe_rows = 4096;  // keep the unit test fast
  Calibrator calibrator(&conn, opts);
  CostModel model;
  auto report = calibrator.Calibrate(&model);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  const CostFactors& f = model.factors();
  // Every calibrated factor must be positive and sane. The upper bound is
  // generous: sanitizer builds run the probes an order of magnitude slower
  // and a loaded host adds more on top.
  for (double v : {f.tm, f.td, f.sem, f.taggm1, f.taggm2, f.taggd1, f.taggd2,
                   f.sortm, f.mjm, f.tjm, f.scand, f.sortd, f.joind}) {
    EXPECT_GT(v, 0.0);
    EXPECT_LT(v, 1e6);
  }
  // The central asymmetry the paper measures: temporal aggregation per
  // input byte is far more expensive in the DBMS than in the middleware.
  EXPECT_GT(f.taggd1 + f.taggd2, (f.taggm1 + f.taggm2) * 2);

  // Probe tables are dropped.
  for (const std::string& t : db.catalog().TableNames()) {
    EXPECT_EQ(t.find("CALIB"), std::string::npos) << t;
  }
  EXPECT_GT(report.ValueOrDie().probe_seconds, 0.0);
  EXPECT_FALSE(report.ValueOrDie().ToString().empty());
}

TEST(CalibratorTest, WirePacingRaisesTransferFactor) {
  dbms::Engine db;
  Calibrator::Options opts;
  opts.probe_rows = 4096;

  // Pacing is additive — 1 MB/s adds ~1 us per byte on top of whatever the
  // CPU costs — so the assertion is additive too: a ratio check breaks under
  // a sanitizer, where the CPU baseline per byte inflates tenfold while the
  // pacing term stays fixed. The min over two calibrations per configuration
  // keeps a load spike in a single multi-second probe run from flipping the
  // comparison.
  auto min_tm = [&](bool paced) {
    dbms::WireConfig wire;
    wire.simulate_delay = paced;
    wire.bytes_per_second = 1e6;
    dbms::Connection conn(&db, wire);
    double best = std::numeric_limits<double>::infinity();
    for (int i = 0; i < 2; ++i) {
      CostModel model;
      EXPECT_TRUE(Calibrator(&conn, opts).Calibrate(&model).ok());
      best = std::min(best, model.factors().tm);
    }
    return best;
  };
  const double fast_tm = min_tm(false);
  const double slow_tm = min_tm(true);

  // A slower wire must calibrate to a larger per-byte transfer factor; ask
  // for a third of the 1 us/byte pacing signal to survive timing noise.
  EXPECT_GT(slow_tm, fast_tm + 0.3);
}

}  // namespace
}  // namespace cost
}  // namespace tango
