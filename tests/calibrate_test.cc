#include <gtest/gtest.h>

#include "cost/calibrate.h"
#include "dbms/engine.h"

namespace tango {
namespace cost {
namespace {

TEST(CalibratorTest, FitsPositiveFactorsAndCleansUp) {
  dbms::Engine db;
  dbms::WireConfig wire;
  wire.simulate_delay = false;
  dbms::Connection conn(&db, wire);

  Calibrator::Options opts;
  opts.probe_rows = 4096;  // keep the unit test fast
  Calibrator calibrator(&conn, opts);
  CostModel model;
  auto report = calibrator.Calibrate(&model);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  const CostFactors& f = model.factors();
  // Every calibrated factor must be positive and sane. The upper bound is
  // generous: sanitizer builds run the probes an order of magnitude slower
  // and a loaded host adds more on top.
  for (double v : {f.tm, f.td, f.sem, f.taggm1, f.taggm2, f.taggd1, f.taggd2,
                   f.sortm, f.mjm, f.tjm, f.scand, f.sortd, f.joind}) {
    EXPECT_GT(v, 0.0);
    EXPECT_LT(v, 1e6);
  }
  // The central asymmetry the paper measures: temporal aggregation per
  // input byte is far more expensive in the DBMS than in the middleware.
  EXPECT_GT(f.taggd1 + f.taggd2, (f.taggm1 + f.taggm2) * 2);

  // Probe tables are dropped.
  for (const std::string& t : db.catalog().TableNames()) {
    EXPECT_EQ(t.find("CALIB"), std::string::npos) << t;
  }
  EXPECT_GT(report.ValueOrDie().probe_seconds, 0.0);
  EXPECT_FALSE(report.ValueOrDie().ToString().empty());
}

TEST(CalibratorTest, WirePacingRaisesTransferFactor) {
  dbms::Engine db;

  dbms::WireConfig fast;
  fast.simulate_delay = false;
  dbms::Connection fast_conn(&db, fast);
  Calibrator::Options opts;
  opts.probe_rows = 4096;
  CostModel fast_model;
  ASSERT_TRUE(Calibrator(&fast_conn, opts).Calibrate(&fast_model).ok());

  dbms::WireConfig slow;
  slow.simulate_delay = true;
  slow.bytes_per_second = 5e6;
  dbms::Connection slow_conn(&db, slow);
  CostModel slow_model;
  ASSERT_TRUE(Calibrator(&slow_conn, opts).Calibrate(&slow_model).ok());

  // A slower wire must calibrate to a larger per-byte transfer factor.
  EXPECT_GT(slow_model.factors().tm, fast_model.factors().tm * 2);
}

}  // namespace
}  // namespace cost
}  // namespace tango
