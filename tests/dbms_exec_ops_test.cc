// Direct unit tests for the DBMS physical operators (the engine-level SQL
// tests cover them end to end; these pin the edge cases).

#include <gtest/gtest.h>

#include "dbms/catalog.h"
#include "dbms/exec_ops.h"

namespace tango {
namespace dbms {
namespace {

Schema KvSchema() {
  return Schema({{"", "K", DataType::kInt}, {"", "V", DataType::kInt}});
}

std::unique_ptr<Table> MakeTable(const std::vector<Tuple>& rows) {
  auto table = std::make_unique<Table>("T", KvSchema());
  for (const Tuple& t : rows) EXPECT_TRUE(table->Append(t).ok());
  return table;
}

std::vector<Tuple> Kv(std::initializer_list<std::pair<int64_t, int64_t>> kv) {
  std::vector<Tuple> rows;
  for (const auto& [k, v] : kv) rows.push_back({Value(k), Value(v)});
  return rows;
}

TEST(IndexScanOpTest, BoundInclusivityMatrix) {
  auto table = MakeTable(Kv({{1, 10}, {2, 20}, {2, 21}, {3, 30}, {5, 50}}));
  ASSERT_TRUE(table->CreateIndex(0).ok());

  struct Case {
    std::optional<Value> lo, hi;
    bool lo_inc, hi_inc;
    size_t expected;
  };
  const Case cases[] = {
      {Value(int64_t{2}), Value(int64_t{3}), true, true, 3},
      {Value(int64_t{2}), Value(int64_t{3}), false, true, 1},
      {Value(int64_t{2}), Value(int64_t{3}), true, false, 2},
      {Value(int64_t{2}), Value(int64_t{3}), false, false, 0},
      {std::nullopt, Value(int64_t{2}), true, true, 3},
      {Value(int64_t{3}), std::nullopt, true, true, 2},
      {std::nullopt, std::nullopt, true, true, 5},
      {Value(int64_t{9}), std::nullopt, true, true, 0},
  };
  for (const Case& c : cases) {
    IndexScanOp scan(table.get(), 0, "", c.lo, c.lo_inc, c.hi, c.hi_inc);
    auto rows = MaterializeAll(&scan);
    ASSERT_TRUE(rows.ok());
    EXPECT_EQ(rows.ValueOrDie().size(), c.expected)
        << (c.lo ? c.lo->ToString() : "-inf") << (c.lo_inc ? "[" : "(") << ".."
        << (c.hi ? c.hi->ToString() : "+inf") << (c.hi_inc ? "]" : ")");
  }
}

TEST(SortMergeJoinOpTest, DuplicateRunsOnBothSides) {
  auto left = std::make_unique<VectorCursor>(
      KvSchema().WithQualifier("L"), Kv({{1, 1}, {1, 2}, {2, 3}, {4, 4}}));
  auto right = std::make_unique<VectorCursor>(
      KvSchema().WithQualifier("R"),
      Kv({{1, 5}, {1, 6}, {1, 7}, {3, 8}, {4, 9}}));
  SortMergeJoinOp join(std::move(left), std::move(right), {0}, {0}, nullptr);
  auto rows = MaterializeAll(&join);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  // key 1: 2x3 = 6; key 4: 1 -> 7 pairs.
  EXPECT_EQ(rows.ValueOrDie().size(), 7u);
}

TEST(SortMergeJoinOpTest, ResidualOnConcatenatedTuple) {
  auto left = std::make_unique<VectorCursor>(KvSchema().WithQualifier("L"),
                                             Kv({{1, 1}, {1, 9}}));
  auto right = std::make_unique<VectorCursor>(KvSchema().WithQualifier("R"),
                                              Kv({{1, 2}, {1, 8}}));
  // Residual: L.V < R.V — positions 1 and 3 of the concatenated tuple.
  auto residual = Expr::Binary(BinaryOp::kLt, Expr::BoundColumn(1),
                               Expr::BoundColumn(3));
  SortMergeJoinOp join(std::move(left), std::move(right), {0}, {0}, residual);
  auto rows = MaterializeAll(&join);
  ASSERT_TRUE(rows.ok());
  // Pairs: (1,2)no wait (V pairs): (1,2)y (1,8)y (9,2)n (9,8)n -> 2.
  EXPECT_EQ(rows.ValueOrDie().size(), 2u);
}

TEST(HashJoinOpTest, NullKeysNeverMatchAndBuildSideEmpty) {
  {
    std::vector<Tuple> l = {{Value::Null(), Value(int64_t{1})},
                            {Value(int64_t{1}), Value(int64_t{2})}};
    std::vector<Tuple> r = {{Value::Null(), Value(int64_t{3})},
                            {Value(int64_t{1}), Value(int64_t{4})}};
    HashJoinOp join(
        std::make_unique<VectorCursor>(KvSchema().WithQualifier("L"), l),
        std::make_unique<VectorCursor>(KvSchema().WithQualifier("R"), r), {0},
        {0}, nullptr);
    auto rows = MaterializeAll(&join);
    ASSERT_TRUE(rows.ok());
    EXPECT_EQ(rows.ValueOrDie().size(), 1u);
  }
  {
    HashJoinOp join(std::make_unique<VectorCursor>(
                        KvSchema().WithQualifier("L"), std::vector<Tuple>{}),
                    std::make_unique<VectorCursor>(
                        KvSchema().WithQualifier("R"), Kv({{1, 1}})),
                    {0}, {0}, nullptr);
    auto rows = MaterializeAll(&join);
    ASSERT_TRUE(rows.ok());
    EXPECT_TRUE(rows.ValueOrDie().empty());
  }
}

TEST(GroupAggOpTest, PendingGroupBoundaries) {
  // Three groups of different sizes; sorted input.
  auto child = std::make_unique<VectorCursor>(
      KvSchema(), Kv({{1, 10}, {1, 20}, {2, 5}, {3, 1}, {3, 2}, {3, 3}}));
  std::vector<AggSpec> aggs;
  aggs.push_back({AggFunc::kCount, nullptr, "C"});
  aggs.push_back({AggFunc::kSum, Expr::BoundColumn(1), "S"});
  GroupAggOp agg(std::move(child), {0}, aggs);
  auto rows = MaterializeAll(&agg);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  const auto& out = rows.ValueOrDie();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0][1].AsInt(), 2);   // count
  EXPECT_EQ(out[0][2].AsInt(), 30);  // sum
  EXPECT_EQ(out[1][2].AsInt(), 5);
  EXPECT_EQ(out[2][1].AsInt(), 3);
  EXPECT_EQ(out[2][2].AsInt(), 6);
}

TEST(GroupAggOpTest, MinMaxOverStrings) {
  Schema schema({{"", "G", DataType::kInt}, {"", "S", DataType::kString}});
  std::vector<Tuple> rows = {{Value(int64_t{1}), Value("beta")},
                             {Value(int64_t{1}), Value("alpha")},
                             {Value(int64_t{1}), Value("gamma")}};
  std::vector<AggSpec> aggs;
  aggs.push_back({AggFunc::kMin, Expr::BoundColumn(1), "MN"});
  aggs.push_back({AggFunc::kMax, Expr::BoundColumn(1), "MX"});
  GroupAggOp agg(std::make_unique<VectorCursor>(schema, rows), {0}, aggs);
  auto out = MaterializeAll(&agg).ValueOrDie();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0][1].AsString(), "alpha");
  EXPECT_EQ(out[0][2].AsString(), "gamma");
}

TEST(DedupOpTest, NullsCompareEqualForDeduplication) {
  Schema schema({{"", "X", DataType::kInt}});
  std::vector<Tuple> rows = {{Value::Null()}, {Value::Null()},
                             {Value(int64_t{1})}};
  DedupOp dedup(std::make_unique<VectorCursor>(schema, rows));
  auto out = MaterializeAll(&dedup).ValueOrDie();
  EXPECT_EQ(out.size(), 2u);
}

TEST(NestedLoopJoinOpTest, EmptySidesAndNullPredicate) {
  auto mk = [](std::vector<Tuple> rows) {
    return std::make_unique<VectorCursor>(KvSchema(), std::move(rows));
  };
  {
    NestedLoopJoinOp join(mk(Kv({{1, 1}, {2, 2}})), mk(Kv({{3, 3}})), nullptr);
    EXPECT_EQ(MaterializeAll(&join).ValueOrDie().size(), 2u);  // cross product
  }
  {
    NestedLoopJoinOp join(mk({}), mk(Kv({{3, 3}})), nullptr);
    EXPECT_TRUE(MaterializeAll(&join).ValueOrDie().empty());
  }
  {
    NestedLoopJoinOp join(mk(Kv({{1, 1}})), mk({}), nullptr);
    EXPECT_TRUE(MaterializeAll(&join).ValueOrDie().empty());
  }
}

TEST(IndexNestedLoopJoinOpTest, ProbesInnerIndex) {
  auto inner = MakeTable(Kv({{1, 100}, {1, 101}, {2, 200}, {3, 300}}));
  ASSERT_TRUE(inner->CreateIndex(0).ok());
  auto outer = std::make_unique<VectorCursor>(
      KvSchema().WithQualifier("O"), Kv({{1, 1}, {3, 3}, {9, 9}}));
  IndexNestedLoopJoinOp join(std::move(outer), inner.get(), "I", 0, 0,
                             nullptr);
  auto rows = MaterializeAll(&join);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  // key 1 -> two inner rows, key 3 -> one, key 9 -> none.
  EXPECT_EQ(rows.ValueOrDie().size(), 3u);
  // Output schema: outer ++ qualified inner.
  EXPECT_EQ(join.schema().num_columns(), 4u);
  EXPECT_TRUE(join.schema().Contains("I.K"));
}

TEST(IndexNestedLoopJoinOpTest, MissingIndexIsAnError) {
  auto inner = MakeTable(Kv({{1, 100}}));
  auto outer = std::make_unique<VectorCursor>(KvSchema().WithQualifier("O"),
                                              Kv({{1, 1}}));
  IndexNestedLoopJoinOp join(std::move(outer), inner.get(), "I", 0, 0,
                             nullptr);
  EXPECT_FALSE(join.Init().ok());
}

}  // namespace
}  // namespace dbms
}  // namespace tango
