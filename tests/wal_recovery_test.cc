// Durable write path: WAL + ARIES-style restart recovery.
//
// The centerpiece is the crash matrix: a fixed transactional schedule is run
// against an engine whose log device is rigged to fail — process death
// before an append, a torn tail record, a lying fsync — at every log
// position the schedule produces, for all three fault kinds. After each
// crash a fresh engine recovers the directory and the recovered state must
// be bit-identical (encoded row multisets) to a never-crashed engine that
// ran exactly the surviving transactions. Recovery is also re-run on its
// own output to prove idempotence.
//
// TANGO_CRASH_EXHAUSTIVE=1 tests every record lsn; the default strides the
// matrix down to keep sanitizer legs fast without thinning the fault kinds.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/wire.h"
#include "dbms/engine.h"
#include "storage/wal.h"

namespace tango {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    dir_ = fs::temp_directory_path() /
           ("tango_walrec_" + tag + "_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  ~TempDir() { fs::remove_all(dir_); }
  std::string path() const { return dir_.string(); }

 private:
  fs::path dir_;
};

std::unique_ptr<dbms::Engine> OpenEngine(const std::string& dir) {
  dbms::EngineOptions opts;
  opts.wal_dir = dir;
  auto db = std::make_unique<dbms::Engine>(opts);
  EXPECT_TRUE(db->Open().ok());
  return db;
}

/// Encoded row multiset — the bit-identical comparison the matrix hinges on.
std::multiset<std::string> Dump(dbms::Engine* db, const std::string& table) {
  auto r = db->Execute("SELECT * FROM " + table);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  std::multiset<std::string> out;
  if (!r.ok()) return out;
  for (const Tuple& t : r.ValueOrDie().rows) {
    WireWriter w;
    w.PutTuple(t);
    out.insert(std::string(w.buffer().begin(), w.buffer().end()));
  }
  return out;
}

std::vector<Tuple> BaseRows() {
  std::vector<Tuple> rows;
  for (int64_t i = 1; i <= 20; ++i) {
    rows.push_back({Value(i), Value(int64_t{0}), Value(i), Value(100 + i)});
  }
  return rows;
}

/// One transaction of the schedule; `tag` names the witness row its INSERT
/// leaves behind (recovered state reveals which transactions survived).
struct TxnSpec {
  int tag = 0;
  std::vector<std::string> body;  // DML between BEGIN and the ending stmt
  bool voluntary_rollback = false;
  bool explicit_txn = true;
};

std::vector<TxnSpec> Schedule() {
  auto ins = [](int tag) {
    return "INSERT INTO W VALUES (" + std::to_string(100 + tag) + ", " +
           std::to_string(tag) + ", 50, 999)";
  };
  std::vector<TxnSpec> txns;
  txns.push_back({0,
                  {"UPDATE W SET T2 = 50 WHERE ID = 1", ins(0)},
                  false,
                  true});
  txns.push_back({1, {ins(1), "UPDATE W SET VAL = 9 WHERE ID = 2"},
                  /*voluntary_rollback=*/true, true});
  txns.push_back({2,
                  {"UPDATE W SET VAL = 7 WHERE ID = 2", ins(2)},
                  false,
                  true});
  txns.push_back({3, {ins(3)}, false, /*explicit_txn=*/false});
  txns.push_back({4,
                  {"UPDATE W SET T2 = 60 WHERE ID = 3", ins(4)},
                  false,
                  true});
  return txns;
}

/// Runs the fixed schedule; `committed_tags` receives the transactions whose
/// commit was acknowledged. Stops caring about statuses once the engine
/// crashes (statements just fail kUnavailable from then on).
void RunSchedule(dbms::Engine* db, std::set<int>* committed_tags) {
  ASSERT_TRUE(
      db->Execute("CREATE TABLE W (ID INT, VAL INT, T1 INT, T2 INT)").ok() ||
      db->crashed());
  if (!db->crashed()) (void)db->BulkLoad("W", BaseRows());
  if (!db->crashed()) (void)db->Execute("ANALYZE W");
  const std::vector<TxnSpec> txns = Schedule();
  for (size_t i = 0; i < txns.size(); ++i) {
    const TxnSpec& txn = txns[i];
    bool all_ok = true;
    if (txn.explicit_txn) all_ok &= db->Execute("BEGIN").ok();
    for (const std::string& sql : txn.body) {
      all_ok &= db->Execute(sql).ok();
    }
    if (txn.voluntary_rollback) {
      (void)db->Execute("ROLLBACK");
    } else if (txn.explicit_txn) {
      if (all_ok && db->Execute("COMMIT").ok()) {
        committed_tags->insert(txn.tag);
      } else {
        (void)db->Execute("ROLLBACK");
      }
    } else if (all_ok) {
      committed_tags->insert(txn.tag);  // autocommit
    }
    // Mid-schedule checkpoint: recovery must combine snapshot + tail log.
    if (i == 1) (void)db->Execute("CHECKPOINT");
  }
}

/// The never-crashed oracle: a volatile engine that runs exactly the
/// surviving transactions, in schedule order.
std::multiset<std::string> Oracle(const std::set<int>& survived) {
  dbms::Engine db;
  EXPECT_TRUE(
      db.Execute("CREATE TABLE W (ID INT, VAL INT, T1 INT, T2 INT)").ok());
  EXPECT_TRUE(db.BulkLoad("W", BaseRows()).ok());
  for (const TxnSpec& txn : Schedule()) {
    if (txn.voluntary_rollback || survived.count(txn.tag) == 0) continue;
    for (const std::string& sql : txn.body) {
      EXPECT_TRUE(db.Execute(sql).ok()) << sql;
    }
  }
  return Dump(&db, "W");
}

/// Which transactions' witness rows are present after recovery.
std::set<int> SurvivedTags(dbms::Engine* db) {
  std::set<int> tags;
  for (const std::string& enc : Dump(db, "W")) {
    WireReader r(reinterpret_cast<const uint8_t*>(enc.data()), enc.size());
    Result<Tuple> t = r.GetTuple();
    if (!t.ok() || t.ValueOrDie().empty() || !t.ValueOrDie()[0].is_int()) {
      continue;
    }
    const int64_t id = t.ValueOrDie()[0].AsInt();
    if (id >= 100) tags.insert(static_cast<int>(id - 100));
  }
  return tags;
}

TEST(WalRecoveryTest, CommittedWorkSurvivesRestart) {
  TempDir dir("basic");
  std::set<int> committed;
  {
    auto db = OpenEngine(dir.path());
    RunSchedule(db.get(), &committed);
    ASSERT_FALSE(db->crashed());
    EXPECT_EQ(committed, (std::set<int>{0, 2, 3, 4}));
  }
  auto db = OpenEngine(dir.path());
  EXPECT_EQ(SurvivedTags(db.get()), committed);
  EXPECT_EQ(Dump(db.get(), "W"), Oracle(committed));
  // ANALYZE replay: the recovered statistics match a live ANALYZE's shape.
  const dbms::Table* t = db->catalog().GetTable("W").ValueOrDie();
  EXPECT_TRUE(t->stats().analyzed);
  EXPECT_GT(db->recovery_stats().records_scanned, 0u);
}

TEST(WalRecoveryTest, RolledBackAndUnfinishedTransactionsVanish) {
  TempDir dir("undo");
  {
    auto db = OpenEngine(dir.path());
    ASSERT_TRUE(
        db->Execute("CREATE TABLE W (ID INT, VAL INT, T1 INT, T2 INT)").ok());
    ASSERT_TRUE(db->BulkLoad("W", BaseRows()).ok());
    // Rolled back before the "crash": undone in memory AND at recovery.
    ASSERT_TRUE(db->Execute("BEGIN").ok());
    ASSERT_TRUE(db->Execute("INSERT INTO W VALUES (200, 1, 1, 2)").ok());
    ASSERT_TRUE(db->Execute("UPDATE W SET VAL = 5 WHERE ID = 1").ok());
    ASSERT_TRUE(db->Execute("ROLLBACK").ok());
    // Left open at the "crash": a loser for the undo pass. Its records are
    // forced to disk by an unrelated autocommit's sync, so redo sees them.
    ASSERT_TRUE(db->Execute("BEGIN").ok());
    ASSERT_TRUE(db->Execute("INSERT INTO W VALUES (201, 1, 1, 2)").ok());
    ASSERT_TRUE(db->Execute("UPDATE W SET VAL = 6 WHERE ID = 2").ok());
    EXPECT_TRUE(db->in_txn(0));
    // (dropped without COMMIT — the destructor is the crash)
  }
  auto db = OpenEngine(dir.path());
  EXPECT_EQ(SurvivedTags(db.get()), std::set<int>{});
  EXPECT_EQ(Dump(db.get(), "W"), Oracle({}));
  // Open a third time: recovery over its own CLR/kEnd output is a no-op.
  auto again = OpenEngine(dir.path());
  EXPECT_EQ(Dump(again.get(), "W"), Oracle({}));
}

TEST(WalRecoveryTest, TempTablesAreNeverLogged) {
  TempDir dir("temp");
  {
    auto db = OpenEngine(dir.path());
    const uint64_t before = db->wal()->appends();
    ASSERT_TRUE(db->Execute("CREATE TABLE TANGO_TMP_X (A INT)").ok());
    ASSERT_TRUE(db->Execute("INSERT INTO TANGO_TMP_X VALUES (1)").ok());
    ASSERT_TRUE(db->Execute("UPDATE TANGO_TMP_X SET A = 2").ok());
    ASSERT_TRUE(db->BulkLoad("TANGO_TMP_X", {{Value(int64_t{3})}}).ok());
    EXPECT_EQ(db->wal()->appends(), before);
  }
  auto db = OpenEngine(dir.path());
  EXPECT_FALSE(db->catalog().HasTable("TANGO_TMP_X"));
}

TEST(WalRecoveryTest, BulkLoadBumpsStatisticsEpochLikeDml) {
  // Satellite: the direct-path load must leave the same staleness footprint
  // as row-at-a-time DML — volatile and durable engines alike.
  for (const bool durable : {false, true}) {
    TempDir dir("epoch");
    std::unique_ptr<dbms::Engine> owned;
    dbms::Engine volatile_db;
    dbms::Engine* db = &volatile_db;
    if (durable) {
      owned = OpenEngine(dir.path());
      db = owned.get();
    }
    ASSERT_TRUE(db->Execute("CREATE TABLE W (ID INT, VAL INT)").ok());
    const dbms::Table* t = db->catalog().GetTable("W").ValueOrDie();
    EXPECT_EQ(t->stats_epoch(), 0u);
    ASSERT_TRUE(db->Execute("ANALYZE W").ok());
    ASSERT_TRUE(
        db->BulkLoad("W", {{Value(int64_t{1}), Value(int64_t{2})},
                           {Value(int64_t{3}), Value(int64_t{4})}})
            .ok());
    EXPECT_EQ(t->stats_epoch(), 2u) << "one epoch tick per loaded row";
    EXPECT_EQ(t->mods_since_analyze(), 2u);
    ASSERT_TRUE(db->Execute("ANALYZE W").ok());
    EXPECT_EQ(t->mods_since_analyze(), 0u) << "ANALYZE resets the mod count";
    EXPECT_EQ(t->stats_epoch(), 2u) << "the epoch never resets";
    ASSERT_TRUE(db->Execute("INSERT INTO W VALUES (5, 6)").ok());
    EXPECT_EQ(t->stats_epoch(), 3u);
  }
}

TEST(WalRecoveryTest, CheckpointSkipsRedoOfSnapshottedWork) {
  TempDir dir("ckpt");
  std::set<int> committed;
  {
    auto db = OpenEngine(dir.path());
    RunSchedule(db.get(), &committed);
    ASSERT_TRUE(db->Checkpoint().ok());
  }
  auto db = OpenEngine(dir.path());
  EXPECT_EQ(Dump(db.get(), "W"), Oracle(committed));
  // Everything is inside the final snapshot; redo applies nothing.
  EXPECT_EQ(db->recovery_stats().redo_applied, 0u);
  EXPECT_GT(db->recovery_stats().snapshot_lsn, 0u);
}

TEST(WalRecoveryTest, ReclaimDropsCoveredSegmentsAndOldSnapshots) {
  TempDir dir("reclaim");
  std::set<int> committed;
  {
    dbms::EngineOptions opts;
    opts.wal_dir = dir.path();
    opts.wal_segment_bytes = 1 << 10;  // many small segments
    dbms::Engine db(opts);
    ASSERT_TRUE(db.Open().ok());
    RunSchedule(&db, &committed);
    ASSERT_TRUE(db.Checkpoint().ok());
    ASSERT_GT(db.wal()->num_segments(), 1u);
    const auto reclaimed = db.ReclaimWalSegments();
    ASSERT_TRUE(reclaimed.ok());
    EXPECT_GT(reclaimed.ValueOrDie(), 0u);
    // Reclamation keeps everything recovery needs:
  }
  auto db = OpenEngine(dir.path());
  EXPECT_EQ(Dump(db.get(), "W"), Oracle(committed));
}

// ---- the crash matrix ----

struct MatrixOutcome {
  int crashes = 0;
  int clean = 0;
};

void CrashAt(dbms::FaultKind kind, storage::Lsn lsn, MatrixOutcome* out) {
  SCOPED_TRACE(std::string(dbms::FaultKindName(kind)) + " @ lsn " +
               std::to_string(lsn));
  TempDir dir("mx");
  std::set<int> acked;
  bool crashed = false;
  {
    auto db = OpenEngine(dir.path());
    auto injector = std::make_shared<dbms::FaultInjector>();
    dbms::FaultPlan plan;
    plan.kind = kind;
    plan.wal_lsn = lsn;
    plan.seed = 0xfa017 + lsn;
    injector->Arm(plan);
    db->set_fault_injector(injector);
    RunSchedule(db.get(), &acked);
    crashed = db->crashed();
    if (crashed) {
      // A halted engine refuses everything until reopened.
      EXPECT_EQ(db->Execute("SELECT * FROM W").status().code(),
                StatusCode::kUnavailable);
    }
  }
  (crashed ? out->crashes : out->clean)++;

  auto db = OpenEngine(dir.path());
  if (!db->catalog().HasTable("W")) {
    // The log died before the CREATE TABLE was durable; nothing could have
    // been acknowledged.
    EXPECT_TRUE(acked.empty());
    return;
  }
  const std::multiset<std::string> dump = Dump(db.get(), "W");
  if (dump.empty()) {
    // Died before the direct-path load's record was durable: the load is
    // one atomic system record, so the table recovers all-or-nothing.
    EXPECT_TRUE(acked.empty());
    return;
  }
  const std::set<int> survived = SurvivedTags(db.get());
  // Acknowledged commits are durable, no matter where the log died...
  for (const int tag : acked) {
    EXPECT_TRUE(survived.count(tag)) << "acked txn " << tag << " lost";
  }
  // ...and nothing survives except acknowledged commits plus at most the
  // one transaction whose commit was in flight when the log died (durable
  // kCommit, acknowledgment lost).
  std::set<int> extras;
  for (const int tag : survived) {
    if (acked.count(tag) == 0) extras.insert(tag);
  }
  EXPECT_LE(extras.size(), 1u) << "more than one unacked txn surfaced";
  EXPECT_EQ(extras.count(1), 0u) << "voluntarily rolled-back txn resurfaced";
  // The recovered state is exactly the never-crashed run over the
  // surviving transactions.
  EXPECT_EQ(dump, Oracle(survived));
  // And recovery is idempotent: a second restart changes nothing.
  auto again = OpenEngine(dir.path());
  EXPECT_EQ(Dump(again.get(), "W"), dump);
}

TEST(WalCrashMatrixTest, EveryFaultKindAtEveryLogPosition) {
  // Discover the schedule's log positions from one clean run.
  std::vector<storage::Lsn> lsns;
  {
    TempDir dir("probe");
    std::set<int> committed;
    {
      auto db = OpenEngine(dir.path());
      RunSchedule(db.get(), &committed);
    }
    auto scan = storage::ReadWal(dir.path());
    ASSERT_TRUE(scan.ok());
    for (const storage::WalRecord& rec : scan.ValueOrDie().records) {
      lsns.push_back(rec.lsn);
    }
  }
  ASSERT_GT(lsns.size(), 20u);

  const bool exhaustive = std::getenv("TANGO_CRASH_EXHAUSTIVE") != nullptr;
  const size_t stride = exhaustive ? 1 : 3;
  MatrixOutcome out;
  for (const dbms::FaultKind kind :
       {dbms::FaultKind::kWalCrash, dbms::FaultKind::kWalTornWrite,
        dbms::FaultKind::kWalPartialFsync}) {
    // Offset the strided start per kind so the union still covers every
    // position class; exhaustive mode tests each kind at each position.
    size_t start = exhaustive ? 0 : static_cast<size_t>(kind) % stride;
    for (size_t i = start; i < lsns.size(); i += stride) {
      CrashAt(kind, lsns[i], &out);
    }
  }
  EXPECT_GT(out.crashes, 0) << "the matrix never actually crashed the log";
}

}  // namespace
}  // namespace tango
