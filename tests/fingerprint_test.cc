// Query fingerprinting (adapt/fingerprint): literal variants of a query
// share one parameterized fingerprint, structural/type/schema mutations do
// not, and a cached plan rebinds to new literals — verified both at the
// canonicalization layer and end-to-end through the middleware's plan cache.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "adapt/fingerprint.h"
#include "common/rng.h"
#include "tango/middleware.h"
#include "tsql/tsql.h"

namespace tango {
namespace {

Result<Schema> TestSchema(const std::string&) {
  return Schema({{"", "G", DataType::kInt},
                 {"", "V", DataType::kInt},
                 {"", "T1", DataType::kInt},
                 {"", "T2", DataType::kInt}});
}

algebra::OpPtr Parse(const std::string& sql) {
  auto plan = tsql::Parser::Parse(sql, TestSchema);
  EXPECT_TRUE(plan.ok()) << sql << ": " << plan.status().ToString();
  return plan.ok() ? plan.ValueOrDie() : nullptr;
}

TEST(FingerprintTest, LiteralVariantsShareFingerprint) {
  const adapt::ParameterizedQuery a =
      adapt::ParameterizeQuery(Parse("SELECT G, V FROM R WHERE V > 1200"));
  const adapt::ParameterizedQuery b =
      adapt::ParameterizeQuery(Parse("SELECT G, V FROM R WHERE V > 1300"));
  EXPECT_EQ(a.canon, b.canon);
  EXPECT_EQ(a.hash, b.hash);
  ASSERT_EQ(a.params.size(), 1u);
  ASSERT_EQ(b.params.size(), 1u);
  EXPECT_EQ(a.params[0], Value(static_cast<int64_t>(1200)));
  EXPECT_EQ(b.params[0], Value(static_cast<int64_t>(1300)));
}

TEST(FingerprintTest, StructuralMutationsChangeFingerprint) {
  const uint64_t base =
      adapt::ParameterizeQuery(Parse("SELECT G, V FROM R WHERE V > 1200")).hash;
  // Different comparison, different column, extra conjunct: all new shapes.
  EXPECT_NE(base,
            adapt::ParameterizeQuery(Parse("SELECT G, V FROM R WHERE V < 1200"))
                .hash);
  EXPECT_NE(base,
            adapt::ParameterizeQuery(Parse("SELECT G, V FROM R WHERE G > 1200"))
                .hash);
  EXPECT_NE(base, adapt::ParameterizeQuery(
                      Parse("SELECT G, V FROM R WHERE V > 1200 AND G = 1"))
                      .hash);
  // A literal's type is part of the shape (int vs double vs string).
  EXPECT_NE(base, adapt::ParameterizeQuery(
                      Parse("SELECT G, V FROM R WHERE V > 12.5"))
                      .hash);
}

TEST(FingerprintTest, SchemaSignatureIsPartOfTheFingerprint) {
  tsql::Parser::SchemaProvider narrower =
      [](const std::string&) -> Result<Schema> {
    return Schema({{"", "G", DataType::kInt}, {"", "V", DataType::kString}});
  };
  const std::string sql = "SELECT G FROM R";
  const adapt::ParameterizedQuery a = adapt::ParameterizeQuery(Parse(sql));
  auto other = tsql::Parser::Parse(sql, narrower);
  ASSERT_TRUE(other.ok()) << other.status().ToString();
  const adapt::ParameterizedQuery b =
      adapt::ParameterizeQuery(other.ValueOrDie());
  // Same text, different catalog schema: a schema change must not hit the
  // old entry (the scan canon embeds the column signature).
  EXPECT_NE(a.hash, b.hash);
}

TEST(FingerprintTest, BindLogicalParamsRebindsLiterals) {
  const adapt::ParameterizedQuery cached =
      adapt::ParameterizeQuery(Parse("SELECT G, V FROM R WHERE V > 1200"));
  const adapt::ParameterizedQuery incoming =
      adapt::ParameterizeQuery(Parse("SELECT G, V FROM R WHERE V > 1300"));
  const algebra::OpPtr rebound =
      adapt::BindLogicalParams(cached.plan, incoming.params);
  EXPECT_EQ(rebound->ToString(),
            Parse("SELECT G, V FROM R WHERE V > 1300")->ToString());
  // The original cached plan is untouched (copy-on-bind).
  EXPECT_EQ(cached.plan->ToString(),
            Parse("SELECT G, V FROM R WHERE V > 1200")->ToString());
}

TEST(FingerprintTest, NodeKeyIsStableAndChildSensitive) {
  auto scan = std::make_shared<algebra::Op>();
  scan->kind = algebra::OpKind::kScan;
  scan->table = "R";
  scan->alias = "R";
  scan->schema = TestSchema("R").ValueOrDie();
  const uint64_t k1 = adapt::NodeKey(*scan, {});
  EXPECT_EQ(k1, adapt::NodeKey(*scan, {}));
  EXPECT_NE(k1, adapt::NodeKey(*scan, {k1}));
  auto other = std::make_shared<algebra::Op>(*scan);
  other->table = "S";
  EXPECT_NE(k1, adapt::NodeKey(*other, {}));
}

TEST(FingerprintTest, ReferencedTablesAreSortedUpperDeduped) {
  const algebra::OpPtr plan =
      Parse("SELECT A.G FROM Rb A, Ra B, Rb C WHERE A.G = B.G AND B.G = C.G");
  EXPECT_EQ(adapt::ReferencedTables(plan),
            (std::vector<std::string>{"RA", "RB"}));
}

// ---------------------------------------------------------------------------
// End-to-end: a repeated parameterized query hits the cache, the rebound
// plan filters with the new literal, and the plancache.* metrics record it.

TEST(FingerprintTest, MiddlewareCacheHitRebindsAndCounts) {
  dbms::Engine db;
  ASSERT_TRUE(db.Execute("CREATE TABLE R (G INT, V INT)").ok());
  std::vector<Tuple> rows;
  Rng rng(77);
  size_t over10 = 0, over40 = 0;
  for (int i = 0; i < 100; ++i) {
    const int64_t v = rng.Uniform(0, 50);
    if (v > 10) ++over10;
    if (v > 40) ++over40;
    rows.push_back({Value(rng.Uniform(1, 5)), Value(v)});
  }
  ASSERT_TRUE(db.BulkLoad("R", rows).ok());
  ASSERT_TRUE(db.Execute("ANALYZE R").ok());
  ASSERT_NE(over10, over40);

  Middleware::Config config;
  config.wire.simulate_delay = false;
  config.adapt = false;
  Middleware mw(&db, config);

  auto first = mw.Prepare("SELECT G, V FROM R WHERE V > 10");
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first.ValueOrDie().source, Middleware::Prepared::Source::kFresh);
  auto run1 = mw.Execute(first.ValueOrDie());
  ASSERT_TRUE(run1.ok()) << run1.status().ToString();
  EXPECT_EQ(run1.ValueOrDie().rows.size(), over10);

  auto second = mw.Prepare("SELECT G, V FROM R WHERE V > 40");
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second.ValueOrDie().source, Middleware::Prepared::Source::kCached);
  EXPECT_EQ(second.ValueOrDie().fingerprint, first.ValueOrDie().fingerprint);
  // The cached physical plan was rebound to the new literal: the result is
  // the > 40 filter, not a replay of the > 10 one.
  auto run2 = mw.Execute(second.ValueOrDie());
  ASSERT_TRUE(run2.ok()) << run2.status().ToString();
  EXPECT_EQ(run2.ValueOrDie().rows.size(), over40);

  EXPECT_EQ(mw.plan_cache().counters().hits, 1u);
  EXPECT_GE(mw.plan_cache().counters().misses, 1u);
  EXPECT_EQ(mw.metrics().counter("plancache.hit").load(), 1u);
  EXPECT_GE(mw.metrics().counter("plancache.miss").load(), 1u);
  EXPECT_EQ(mw.metrics().counter("plancache.insert").load(), 1u);

  // EXPLAIN shows the provenance.
  auto explained = mw.Explain(second.ValueOrDie());
  ASSERT_TRUE(explained.ok()) << explained.status().ToString();
  EXPECT_EQ(explained.ValueOrDie().rfind("plan: cached", 0), 0u)
      << explained.ValueOrDie();
}

TEST(FingerprintTest, DisabledCacheIsUncached) {
  dbms::Engine db;
  ASSERT_TRUE(db.Execute("CREATE TABLE R (G INT, V INT)").ok());
  ASSERT_TRUE(db.BulkLoad("R", {{Value(int64_t{1}), Value(int64_t{2})}}).ok());
  ASSERT_TRUE(db.Execute("ANALYZE R").ok());
  Middleware::Config config;
  config.wire.simulate_delay = false;
  config.plan_cache.enable = false;
  Middleware mw(&db, config);
  auto prepared = mw.Prepare("SELECT G FROM R WHERE V > 1");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  EXPECT_EQ(prepared.ValueOrDie().source,
            Middleware::Prepared::Source::kUncached);
  EXPECT_EQ(prepared.ValueOrDie().cache_entry, nullptr);
  EXPECT_EQ(mw.metrics().counter("plancache.miss").load(), 0u);
}

}  // namespace
}  // namespace tango
