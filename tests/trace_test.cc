// Trace-span tests: recorder semantics (first-call-wins stamps, parent
// fixups), Chrome trace_event JSON well-formedness (validated by a real
// JSON parser, not substring checks), and the middleware integration —
// every executed operator gets a span, spans nest properly, and the
// prefetch-producer / pool-worker spans carry the right thread ids.

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "obs/trace.h"
#include "tango/middleware.h"

namespace tango {
namespace {

// ---------------------------------------------------------------------------
// A minimal JSON well-formedness checker (objects, arrays, strings with
// escapes, numbers, literals). Returns false on any syntax error.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || !std::isxdigit(static_cast<unsigned char>(
                                         s_[pos_]))) {
              return false;
            }
          }
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const std::string& lit) {
    if (s_.compare(pos_, lit.size(), lit) != 0) return false;
    pos_ += lit.size();
    return true;
  }

  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

TEST(TraceRecorderTest, StampsAreFirstCallWins) {
  obs::TraceRecorder trace;
  const obs::SpanId id = trace.Allocate("op", "operator");
  // End before Begin is ignored: the span stays un-started.
  trace.End(id);
  std::vector<obs::Span> spans = trace.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_FALSE(spans[0].completed());

  trace.Begin(id);
  const int64_t started = trace.Snapshot()[0].start_us;
  trace.Begin(id);  // second Begin ignored
  EXPECT_EQ(trace.Snapshot()[0].start_us, started);
  trace.End(id);
  const int64_t ended = trace.Snapshot()[0].end_us;
  trace.End(id);  // second End ignored
  EXPECT_EQ(trace.Snapshot()[0].end_us, ended);
  EXPECT_TRUE(trace.Snapshot()[0].completed());

  // kNoSpan is always safe.
  trace.Begin(obs::kNoSpan);
  trace.End(obs::kNoSpan);
  EXPECT_EQ(trace.Snapshot().size(), 1u);
}

TEST(TraceRecorderTest, ParentFixupAndPlanNodeAttribution) {
  obs::TraceRecorder trace;
  const obs::SpanId parent = trace.StartSpan("execute", "query");
  const obs::SpanId child = trace.Allocate("SORT^M", "operator", obs::kNoSpan,
                                           /*plan_node=*/3);
  trace.SetParent(child, parent);
  trace.Begin(child);
  trace.End(child);
  trace.End(parent);

  std::map<obs::SpanId, obs::Span> by_id;
  for (const obs::Span& s : trace.Snapshot()) by_id[s.id] = s;
  EXPECT_EQ(by_id[child].parent, parent);
  EXPECT_EQ(by_id[child].plan_node, 3);
  EXPECT_EQ(by_id[parent].plan_node, -1);
}

TEST(TraceRecorderTest, ScopedSpanIsNullSafe) {
  obs::ScopedSpan off(nullptr, "noop", "test");
  EXPECT_EQ(off.id(), obs::kNoSpan);

  obs::TraceRecorder trace;
  {
    obs::ScopedSpan on(&trace, "scoped", "test");
    EXPECT_NE(on.id(), obs::kNoSpan);
  }
  std::vector<obs::Span> spans = trace.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_TRUE(spans[0].completed());
}

TEST(TraceRecorderTest, ChromeJsonIsWellFormedAndEscaped) {
  obs::TraceRecorder trace;
  // Hostile name: quotes, backslash, newline, tab, control char.
  const obs::SpanId nasty =
      trace.StartSpan("SELECT \"G\" \\ \n\t \x01 FROM R", "operator");
  trace.End(nasty);
  const obs::SpanId open = trace.StartSpan("never-ended", "query");
  (void)open;

  const std::string json = trace.ToChromeJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  // The required trace_event envelope and complete-event phase.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // Open spans are omitted, not emitted half-timed.
  EXPECT_EQ(json.find("never-ended"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Middleware integration on Query 2 (the paper's join query) at DOP 2.

struct RandomRelation {
  std::vector<Tuple> rows;  // (G, V, T1, T2)
};

RandomRelation MakeRelation(uint64_t seed, size_t n, int64_t groups,
                            int64_t horizon) {
  Rng rng(seed);
  RandomRelation rel;
  for (size_t i = 0; i < n; ++i) {
    const int64_t t1 = rng.Uniform(0, horizon);
    rel.rows.push_back({Value(rng.Uniform(1, groups)),
                        Value(rng.Uniform(0, 50)), Value(t1),
                        Value(t1 + rng.Uniform(1, horizon / 4))});
  }
  return rel;
}

void Load(dbms::Engine* db, const std::string& table,
          const RandomRelation& rel) {
  ASSERT_TRUE(
      db->Execute("CREATE TABLE " + table + " (G INT, V INT, T1 INT, T2 INT)")
          .ok());
  ASSERT_TRUE(db->BulkLoad(table, rel.rows).ok());
  ASSERT_TRUE(db->Execute("ANALYZE " + table).ok());
}

const char* kQuery2 =
    "TEMPORAL SELECT X.G, X.V, Y.V FROM RA X, RB Y "
    "WHERE X.G = Y.G ORDER BY G";

TEST(TraceMiddlewareTest, Query2SpansCoverPlanNestAndThread) {
  dbms::Engine db;
  Load(&db, "RA", MakeRelation(7, 400, 8, 80));
  Load(&db, "RB", MakeRelation(8, 300, 8, 80));

  Middleware::Config config;
  config.wire.simulate_delay = false;
  config.adapt = false;
  config.dop = 2;
  Middleware mw(&db, config);
  // Ban the DBMS-side sort/join algorithms so the plan keeps SORT^M (which
  // always submits pool tasks at DOP 2) and the parallel T^M drain in the
  // middleware.
  cost::CostFactors& f = mw.cost_model().factors();
  f.sortd = f.joind = f.prodd = 1e9;

  obs::TraceRecorder trace;
  mw.set_trace_recorder(&trace);

  auto prepared = mw.Prepare(kQuery2);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  auto exec = mw.Execute(prepared.ValueOrDie());
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  ASSERT_GT(exec.ValueOrDie().rows.size(), 0u);

  const std::vector<obs::Span> spans = trace.Snapshot();
  std::map<obs::SpanId, obs::Span> by_id;
  for (const obs::Span& s : spans) by_id[s.id] = s;

  auto find_one = [&spans](const std::string& name) -> const obs::Span* {
    for (const obs::Span& s : spans) {
      if (s.name == name) return &s;
    }
    return nullptr;
  };
  const obs::Span* execute = find_one("execute");
  ASSERT_NE(execute, nullptr);
  ASSERT_TRUE(execute->completed());
  EXPECT_NE(find_one("optimize"), nullptr);
  const obs::Span* compile = find_one("compile");
  ASSERT_NE(compile, nullptr);
  EXPECT_EQ(compile->parent, execute->id);

  // Every executed operator is present as a span attributed to its plan
  // node (timing id), begun and ended.
  const exec::TimingSink& timings = exec.ValueOrDie().timings;
  ASSERT_GT(timings.size(), 0u);
  for (size_t i = 0; i < timings.size(); ++i) {
    const obs::Span* op = nullptr;
    for (const obs::Span& s : spans) {
      if (s.category == "operator" && s.name == timings[i].label &&
          s.plan_node == static_cast<int64_t>(i)) {
        op = &s;
        break;
      }
    }
    ASSERT_NE(op, nullptr) << "no span for operator " << i << " ("
                           << timings[i].label << ")";
    EXPECT_TRUE(op->completed()) << timings[i].label;
  }

  // Proper nesting: every completed child interval is contained in its
  // (completed) parent's interval.
  size_t checked = 0;
  for (const obs::Span& s : spans) {
    if (!s.completed() || s.parent == obs::kNoSpan) continue;
    const auto it = by_id.find(s.parent);
    ASSERT_NE(it, by_id.end()) << s.name;
    const obs::Span& p = it->second;
    ASSERT_TRUE(p.completed()) << s.name << " inside " << p.name;
    EXPECT_GE(s.start_us, p.start_us) << s.name << " inside " << p.name;
    EXPECT_LE(s.end_us, p.end_us) << s.name << " inside " << p.name;
    ++checked;
  }
  EXPECT_GT(checked, 0u);

  // Thread attribution. The producer spans run on their own threads (one
  // per TRANSFER^M at DOP > 1), distinct from the query thread, and each
  // TRANSFER^M operator span was begun on its producer's thread.
  std::set<uint64_t> producer_tids, tm_tids;
  size_t pool_tasks = 0;
  for (const obs::Span& s : spans) {
    if (s.name == "prefetch.producer") {
      EXPECT_TRUE(s.completed());
      EXPECT_EQ(s.parent, execute->id);
      EXPECT_NE(s.thread_id, execute->thread_id);
      producer_tids.insert(s.thread_id);
    }
    if (s.category == "operator" && s.name == "TRANSFER^M") {
      tm_tids.insert(s.thread_id);
    }
    if (s.name == "pool.task") {
      EXPECT_TRUE(s.completed());
      EXPECT_EQ(s.parent, execute->id);
      EXPECT_NE(s.thread_id, execute->thread_id);
      ++pool_tasks;
    }
  }
  EXPECT_FALSE(producer_tids.empty());
  EXPECT_EQ(producer_tids, tm_tids);
  // SORT^M at DOP 2 submits its chunk sorts to the pool — at least one
  // worker span must exist.
  EXPECT_GT(pool_tasks, 0u);

  // Acceptance: the Query 2 trace exports as valid Chrome trace_event JSON.
  const std::string json = trace.ToChromeJson();
  EXPECT_TRUE(JsonChecker(json).Valid());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("prefetch.producer"), std::string::npos);
  EXPECT_NE(json.find("pool.task"), std::string::npos);
  EXPECT_NE(json.find("TRANSFER^M"), std::string::npos);
}

TEST(TraceMiddlewareTest, RetryBackoffSpansAppearUnderFault) {
  dbms::Engine db;
  Load(&db, "R", MakeRelation(11, 200, 6, 60));
  Middleware::Config config;
  config.wire.simulate_delay = false;
  config.adapt = false;
  Middleware mw(&db, config);
  auto injector = std::make_shared<dbms::FaultInjector>();
  mw.connection().set_fault_injector(injector);
  obs::TraceRecorder trace;
  mw.set_trace_recorder(&trace);

  dbms::FaultPlan plan;
  plan.kind = dbms::FaultKind::kStatementFail;
  plan.sql_substring = "SELECT";
  plan.times = 2;
  injector->Arm(plan);

  auto r = mw.Query(
      "TEMPORAL SELECT G, T1, T2, COUNT(G) AS CNT FROM R "
      "GROUP BY G OVER TIME ORDER BY G, T1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  std::map<obs::SpanId, obs::Span> by_id;
  for (const obs::Span& s : trace.Snapshot()) by_id[s.id] = s;
  size_t backoffs = 0;
  for (const auto& [id, s] : by_id) {
    if (s.name != "retry.backoff") continue;
    EXPECT_TRUE(s.completed());
    // Each backoff sleep nests under the retrying transfer's operator span.
    const auto it = by_id.find(s.parent);
    ASSERT_NE(it, by_id.end());
    EXPECT_EQ(it->second.name, "TRANSFER^M");
    ++backoffs;
  }
  EXPECT_EQ(backoffs, 2u);
}

}  // namespace
}  // namespace tango
