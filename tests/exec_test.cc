#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "dbms/connection.h"
#include "dbms/engine.h"
#include "exec/basic.h"
#include "exec/instrument.h"
#include "exec/join.h"
#include "exec/sort.h"
#include "exec/taggr.h"
#include "exec/transfer.h"

namespace tango {
namespace exec {
namespace {

Schema PosSchema() {
  return Schema({{"", "POSID", DataType::kInt},
                 {"", "EMPNAME", DataType::kString},
                 {"", "T1", DataType::kInt},
                 {"", "T2", DataType::kInt}});
}

// Figure 3(a)'s POSITION relation.
std::vector<Tuple> Figure3Rows() {
  return {
      {Value(int64_t{1}), Value("Tom"), Value(int64_t{2}), Value(int64_t{20})},
      {Value(int64_t{1}), Value("Jane"), Value(int64_t{5}), Value(int64_t{25})},
      {Value(int64_t{2}), Value("Tom"), Value(int64_t{5}), Value(int64_t{10})},
  };
}

CursorPtr PosCursor() {
  return std::make_unique<VectorCursor>(PosSchema(), Figure3Rows());
}

TEST(FilterCursorTest, FiltersRows) {
  auto pred = Bind(Expr::Binary(BinaryOp::kEq, Expr::ColumnRef("POSID"),
                                Expr::Int(1)),
                   PosSchema())
                  .ValueOrDie();
  FilterCursor f(PosCursor(), pred);
  auto rows = MaterializeAll(&f).ValueOrDie();
  EXPECT_EQ(rows.size(), 2u);
}

TEST(ProjectCursorTest, ComputesExpressions) {
  Schema out({{"", "DUR", DataType::kInt}});
  auto e = Bind(Expr::Binary(BinaryOp::kSub, Expr::ColumnRef("T2"),
                             Expr::ColumnRef("T1")),
                PosSchema())
               .ValueOrDie();
  ProjectCursor p(PosCursor(), {e}, out);
  auto rows = MaterializeAll(&p).ValueOrDie();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0][0].AsInt(), 18);
  EXPECT_EQ(rows[2][0].AsInt(), 5);
}

TEST(SortCursorTest, InMemorySort) {
  SortCursor s(PosCursor(), {{0, false}, {2, true}});
  auto rows = MaterializeAll(&s).ValueOrDie();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0][0].AsInt(), 2);
  EXPECT_EQ(rows[1][2].AsInt(), 2);  // PosID 1 sorted by T1
  EXPECT_EQ(s.spilled_runs(), 0u);
}

TEST(SortCursorTest, ExternalSortSpillsAndStaysSorted) {
  Rng rng(3);
  Schema schema({{"", "K", DataType::kInt}, {"", "PAD", DataType::kString}});
  std::vector<Tuple> rows;
  for (int i = 0; i < 5000; ++i) {
    rows.push_back({Value(rng.Uniform(0, 100000)),
                    Value(std::string(64, 'x'))});
  }
  auto expected = rows;
  std::sort(expected.begin(), expected.end(),
            [](const Tuple& a, const Tuple& b) { return a[0] < b[0]; });
  // Tiny budget forces spilling.
  SortCursor s(std::make_unique<VectorCursor>(schema, rows), {{0, true}},
               /*memory_budget_bytes=*/16 * 1024);
  auto sorted = MaterializeAll(&s).ValueOrDie();
  ASSERT_EQ(sorted.size(), rows.size());
  EXPECT_GT(s.spilled_runs(), 2u);
  for (size_t i = 0; i < sorted.size(); ++i) {
    EXPECT_EQ(sorted[i][0].AsInt(), expected[i][0].AsInt()) << i;
  }
}

TEST(DupElimCursorTest, RemovesAdjacentDuplicates) {
  Schema schema({{"", "X", DataType::kInt}});
  std::vector<Tuple> rows = {{Value(int64_t{1})}, {Value(int64_t{1})},
                             {Value(int64_t{2})}, {Value(int64_t{2})},
                             {Value(int64_t{2})}, {Value(int64_t{3})}};
  DupElimCursor d(std::make_unique<VectorCursor>(schema, rows));
  auto out = MaterializeAll(&d).ValueOrDie();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[2][0].AsInt(), 3);
}

TEST(DifferenceCursorTest, MultisetSemantics) {
  Schema schema({{"", "X", DataType::kInt}});
  auto mk = [&](std::vector<int64_t> v) {
    std::vector<Tuple> rows;
    for (int64_t x : v) rows.push_back({Value(x)});
    return std::make_unique<VectorCursor>(schema, rows);
  };
  // {1,1,2,3} - {1,3,4} = {1,2} (one 1 cancelled, not both).
  DifferenceCursor d(mk({1, 1, 2, 3}), mk({1, 3, 4}));
  auto out = MaterializeAll(&d).ValueOrDie();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0][0].AsInt(), 1);
  EXPECT_EQ(out[1][0].AsInt(), 2);
}

TEST(CoalesceCursorTest, MergesAdjacentAndOverlapping) {
  Schema schema({{"", "K", DataType::kInt},
                 {"", "T1", DataType::kInt},
                 {"", "T2", DataType::kInt}});
  std::vector<Tuple> rows = {
      {Value(int64_t{1}), Value(int64_t{1}), Value(int64_t{5})},
      {Value(int64_t{1}), Value(int64_t{5}), Value(int64_t{8})},   // adjacent
      {Value(int64_t{1}), Value(int64_t{7}), Value(int64_t{9})},   // overlap
      {Value(int64_t{1}), Value(int64_t{11}), Value(int64_t{12})}, // gap
      {Value(int64_t{2}), Value(int64_t{1}), Value(int64_t{3})},   // new key
  };
  CoalesceCursor c(std::make_unique<VectorCursor>(schema, rows), 1, 2);
  auto out = MaterializeAll(&c).ValueOrDie();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0][1].AsInt(), 1);
  EXPECT_EQ(out[0][2].AsInt(), 9);
  EXPECT_EQ(out[1][1].AsInt(), 11);
  EXPECT_EQ(out[2][0].AsInt(), 2);
}

TEST(CoalesceCursorTest, ContainedPeriodDoesNotShrinkResult) {
  Schema schema({{"", "K", DataType::kInt},
                 {"", "T1", DataType::kInt},
                 {"", "T2", DataType::kInt}});
  // Second period contained in the first: [1,10) + [2,3) = [1,10).
  std::vector<Tuple> rows = {
      {Value(int64_t{1}), Value(int64_t{1}), Value(int64_t{10})},
      {Value(int64_t{1}), Value(int64_t{2}), Value(int64_t{3})},
  };
  CoalesceCursor c(std::make_unique<VectorCursor>(schema, rows), 1, 2);
  auto out = MaterializeAll(&c).ValueOrDie();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0][2].AsInt(), 10);
}

TEST(MergeJoinCursorTest, JoinsWithDuplicates) {
  Schema ls({{"L", "K", DataType::kInt}, {"L", "A", DataType::kString}});
  Schema rs({{"R", "K", DataType::kInt}, {"R", "B", DataType::kString}});
  std::vector<Tuple> lrows = {{Value(int64_t{1}), Value("a1")},
                              {Value(int64_t{1}), Value("a2")},
                              {Value(int64_t{2}), Value("a3")},
                              {Value(int64_t{4}), Value("a4")}};
  std::vector<Tuple> rrows = {{Value(int64_t{1}), Value("b1")},
                              {Value(int64_t{1}), Value("b2")},
                              {Value(int64_t{3}), Value("b3")},
                              {Value(int64_t{4}), Value("b4")}};
  MergeJoinCursor j(std::make_unique<VectorCursor>(ls, lrows),
                    std::make_unique<VectorCursor>(rs, rrows), {0}, {0});
  auto out = MaterializeAll(&j).ValueOrDie();
  // key 1: 2x2 = 4 pairs; key 4: 1 pair.
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out[0][1].AsString(), "a1");
  EXPECT_EQ(out[0][3].AsString(), "b1");
  EXPECT_EQ(out[4][3].AsString(), "b4");
  EXPECT_EQ(j.schema().num_columns(), 4u);
}

TEST(MergeJoinCursorTest, NullKeysNeverJoin) {
  Schema s({{"", "K", DataType::kInt}});
  std::vector<Tuple> l = {{Value::Null()}, {Value(int64_t{1})}};
  std::vector<Tuple> r = {{Value::Null()}, {Value(int64_t{1})}};
  MergeJoinCursor j(std::make_unique<VectorCursor>(s, l),
                    std::make_unique<VectorCursor>(s, r), {0}, {0});
  auto out = MaterializeAll(&j).ValueOrDie();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0][0].AsInt(), 1);
}

TEST(TemporalJoinCursorTest, IntersectsPeriods) {
  // TAGGR result (Figure 3(c)) temporally joined back to POSITION —
  // reproducing the paper's query result (Figure 3(b)).
  Schema aggs({{"", "POSID", DataType::kInt},
               {"", "T1", DataType::kInt},
               {"", "T2", DataType::kInt},
               {"", "CNT", DataType::kInt}});
  std::vector<Tuple> agg_rows = {
      {Value(int64_t{1}), Value(int64_t{2}), Value(int64_t{5}), Value(int64_t{1})},
      {Value(int64_t{1}), Value(int64_t{5}), Value(int64_t{20}), Value(int64_t{2})},
      {Value(int64_t{1}), Value(int64_t{20}), Value(int64_t{25}), Value(int64_t{1})},
      {Value(int64_t{2}), Value(int64_t{5}), Value(int64_t{10}), Value(int64_t{1})},
  };
  // left = POSITION sorted on PosID; right = aggregation result.
  auto pos_rows = Figure3Rows();
  // Output schema per the algebra: left minus period (POSID, EMPNAME), right
  // minus join attr and period (CNT), then T1, T2.
  Schema out_schema({{"", "POSID", DataType::kInt},
                     {"", "EMPNAME", DataType::kString},
                     {"", "CNT", DataType::kInt},
                     {"", "T1", DataType::kInt},
                     {"", "T2", DataType::kInt}});
  TemporalJoinCursor j(std::make_unique<VectorCursor>(PosSchema(), pos_rows),
                       std::make_unique<VectorCursor>(aggs, agg_rows),
                       /*left_keys=*/{0}, /*right_keys=*/{0},
                       /*left_t1=*/2, /*left_t2=*/3, /*right_t1=*/1,
                       /*right_t2=*/2, /*left_out=*/{0, 1},
                       /*right_out=*/{3}, out_schema);
  auto out = MaterializeAll(&j).ValueOrDie();
  // Figure 3(b): 5 rows.
  ASSERT_EQ(out.size(), 5u);
  // Tom@1 [2,20) x [2,5)c1 -> [2,5) count 1; x [5,20)c2 -> [5,20) count 2.
  EXPECT_EQ(out[0][1].AsString(), "Tom");
  EXPECT_EQ(out[0][3].AsInt(), 2);
  EXPECT_EQ(out[0][4].AsInt(), 5);
  EXPECT_EQ(out[0][2].AsInt(), 1);
  EXPECT_EQ(out[1][3].AsInt(), 5);
  EXPECT_EQ(out[1][4].AsInt(), 20);
  EXPECT_EQ(out[1][2].AsInt(), 2);
}

TEST(TemporalAggregationCursorTest, ReproducesFigure3c) {
  // Input must be sorted on (PosID, T1); Figure 3(a) already is.
  Schema out({{"", "POSID", DataType::kInt},
              {"", "T1", DataType::kInt},
              {"", "T2", DataType::kInt},
              {"", "COUNT", DataType::kInt}});
  TemporalAggregationCursor agg(PosCursor(), {0}, 2, 3,
                                {{AggFunc::kCount, 0, false}}, out);
  auto rows = MaterializeAll(&agg).ValueOrDie();
  ASSERT_EQ(rows.size(), 4u);
  const int64_t expected[4][4] = {
      {1, 2, 5, 1}, {1, 5, 20, 2}, {1, 20, 25, 1}, {2, 5, 10, 1}};
  for (size_t i = 0; i < 4; ++i) {
    for (size_t c = 0; c < 4; ++c) {
      EXPECT_EQ(rows[i][c].AsInt(), expected[i][c]) << i << "," << c;
    }
  }
}

TEST(TemporalAggregationCursorTest, MinMaxSumAvg) {
  Schema in({{"", "G", DataType::kInt},
             {"", "V", DataType::kInt},
             {"", "T1", DataType::kInt},
             {"", "T2", DataType::kInt}});
  std::vector<Tuple> rows = {
      {Value(int64_t{1}), Value(int64_t{10}), Value(int64_t{0}), Value(int64_t{10})},
      {Value(int64_t{1}), Value(int64_t{4}), Value(int64_t{5}), Value(int64_t{15})},
  };
  Schema out({{"", "G", DataType::kInt},
              {"", "T1", DataType::kInt},
              {"", "T2", DataType::kInt},
              {"", "MN", DataType::kInt},
              {"", "MX", DataType::kInt},
              {"", "SM", DataType::kInt},
              {"", "AV", DataType::kDouble}});
  TemporalAggregationCursor agg(
      std::make_unique<VectorCursor>(in, rows), {0}, 2, 3,
      {{AggFunc::kMin, 1, false},
       {AggFunc::kMax, 1, false},
       {AggFunc::kSum, 1, false},
       {AggFunc::kAvg, 1, false}},
      out);
  auto got = MaterializeAll(&agg).ValueOrDie();
  // Constant periods: [0,5) {10}, [5,10) {10,4}, [10,15) {4}.
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0][3].AsInt(), 10);
  EXPECT_EQ(got[0][4].AsInt(), 10);
  EXPECT_EQ(got[1][3].AsInt(), 4);
  EXPECT_EQ(got[1][4].AsInt(), 10);
  EXPECT_EQ(got[1][5].AsInt(), 14);
  EXPECT_DOUBLE_EQ(got[1][6].AsDouble(), 7.0);
  EXPECT_EQ(got[2][3].AsInt(), 4);
  EXPECT_EQ(got[2][4].AsInt(), 4);
}

TEST(TemporalAggregationCursorTest, SkipsEmptyAndNullPeriods) {
  Schema in({{"", "G", DataType::kInt},
             {"", "T1", DataType::kInt},
             {"", "T2", DataType::kInt}});
  std::vector<Tuple> rows = {
      {Value(int64_t{1}), Value(int64_t{5}), Value(int64_t{5})},  // empty
      {Value(int64_t{1}), Value::Null(), Value(int64_t{9})},      // null
      {Value(int64_t{1}), Value(int64_t{3}), Value(int64_t{7})},
  };
  Schema out({{"", "G", DataType::kInt},
              {"", "T1", DataType::kInt},
              {"", "T2", DataType::kInt},
              {"", "C", DataType::kInt}});
  TemporalAggregationCursor agg(std::make_unique<VectorCursor>(in, rows), {0},
                                1, 2, {{AggFunc::kCount, 0, true}}, out);
  auto got = MaterializeAll(&agg).ValueOrDie();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0][1].AsInt(), 3);
  EXPECT_EQ(got[0][2].AsInt(), 7);
  EXPECT_EQ(got[0][3].AsInt(), 1);
}

TEST(TemporalAggregationCursorTest, NoGroupingSweepsWholeRelation) {
  Schema in({{"", "T1", DataType::kInt}, {"", "T2", DataType::kInt}});
  std::vector<Tuple> rows = {
      {Value(int64_t{1}), Value(int64_t{4})},
      {Value(int64_t{2}), Value(int64_t{6})},
  };
  Schema out({{"", "T1", DataType::kInt},
              {"", "T2", DataType::kInt},
              {"", "C", DataType::kInt}});
  TemporalAggregationCursor agg(std::make_unique<VectorCursor>(in, rows), {},
                                0, 1, {{AggFunc::kCount, 0, true}}, out);
  auto got = MaterializeAll(&agg).ValueOrDie();
  // [1,2):1  [2,4):2  [4,6):1
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[1][2].AsInt(), 2);
}

// Property: for random inputs, temporal COUNT aggregation conserves
// "tuple-days": sum over output of count*(T2-T1) == sum over input of
// (T2-T1), and constant periods tile each group without overlaps.
class TAggrPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TAggrPropertyTest, ConservesTupleDaysAndTiles) {
  Rng rng(GetParam());
  Schema in({{"", "G", DataType::kInt},
             {"", "T1", DataType::kInt},
             {"", "T2", DataType::kInt}});
  std::vector<Tuple> rows;
  int64_t input_days = 0;
  for (int i = 0; i < 300; ++i) {
    const int64_t g = rng.Uniform(0, 5);
    const int64_t t1 = rng.Uniform(0, 100);
    const int64_t t2 = t1 + rng.Uniform(1, 30);
    input_days += t2 - t1;
    rows.push_back({Value(g), Value(t1), Value(t2)});
  }
  std::sort(rows.begin(), rows.end(), [](const Tuple& a, const Tuple& b) {
    if (a[0].AsInt() != b[0].AsInt()) return a[0].AsInt() < b[0].AsInt();
    return a[1].AsInt() < b[1].AsInt();
  });
  Schema out({{"", "G", DataType::kInt},
              {"", "T1", DataType::kInt},
              {"", "T2", DataType::kInt},
              {"", "C", DataType::kInt}});
  TemporalAggregationCursor agg(std::make_unique<VectorCursor>(in, rows), {0},
                                1, 2, {{AggFunc::kCount, 0, true}}, out);
  auto got = MaterializeAll(&agg).ValueOrDie();
  int64_t output_days = 0;
  for (size_t i = 0; i < got.size(); ++i) {
    const int64_t t1 = got[i][1].AsInt();
    const int64_t t2 = got[i][2].AsInt();
    const int64_t c = got[i][3].AsInt();
    ASSERT_LT(t1, t2) << "empty constant period";
    ASSERT_GE(c, 1) << "empty group emitted";
    output_days += c * (t2 - t1);
    if (i > 0 && got[i][0].AsInt() == got[i - 1][0].AsInt()) {
      ASSERT_GE(t1, got[i - 1][2].AsInt()) << "overlapping constant periods";
    }
  }
  EXPECT_EQ(output_days, input_days);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TAggrPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 42));

TEST(TransferCursorsTest, RoundTripThroughDbms) {
  dbms::Engine db;
  ASSERT_TRUE(db.Execute("CREATE TABLE POSITION (PosID INT, EmpName "
                         "VARCHAR(20), T1 INT, T2 INT)")
                  .ok());
  ASSERT_TRUE(db.Execute("INSERT INTO POSITION VALUES "
                         "(1, 'Tom', 2, 20), (1, 'Jane', 5, 25), "
                         "(2, 'Tom', 5, 10)")
                  .ok());
  dbms::WireConfig wire;
  wire.simulate_delay = false;
  dbms::Connection conn(&db, wire);

  // TRANSFER^D loads middleware rows into a temp table; a dependent
  // TRANSFER^M then reads them back joined with POSITION — the Figure 5
  // plan in miniature.
  Schema agg_schema({{"", "POSID", DataType::kInt},
                     {"", "T1", DataType::kInt},
                     {"", "T2", DataType::kInt},
                     {"", "CNT", DataType::kInt}});
  std::vector<Tuple> agg_rows = {
      {Value(int64_t{1}), Value(int64_t{2}), Value(int64_t{5}), Value(int64_t{1})},
      {Value(int64_t{1}), Value(int64_t{5}), Value(int64_t{20}), Value(int64_t{2})},
  };
  auto td = std::make_unique<TransferDCursor>(
      &conn, "TMP1", std::vector<std::string>{"POSID", "T1", "T2", "CNT"},
      std::make_unique<VectorCursor>(agg_schema, agg_rows));

  Schema result_schema({{"", "POSID", DataType::kInt},
                        {"", "EMPNAME", DataType::kString},
                        {"", "CNT", DataType::kInt}});
  std::vector<CursorPtr> deps;
  deps.push_back(std::move(td));
  TransferMCursor tm(&conn,
                     "SELECT A.PosID AS PosID, EmpName, CNT "
                     "FROM TMP1 A, POSITION B "
                     "WHERE A.PosID = B.PosID AND A.T1 < B.T2 AND A.T2 > B.T1 "
                     "ORDER BY PosID, CNT, EmpName",
                     result_schema, std::move(deps));
  auto rows = MaterializeAll(&tm);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  // TMP1 x POSITION overlaps: [2,5)x Tom; [5,20)x Tom, Jane -> 3 rows... plus
  // [2,5) does not overlap Jane [5,25) (closed-open), total 4? Check: row1
  // [2,5): Tom[2,20) yes, Jane[5,25) no (5 !< 5). row2 [5,20): Tom yes, Jane
  // yes. => 3 rows.
  ASSERT_EQ(rows.ValueOrDie().size(), 3u);
  EXPECT_TRUE(db.catalog().HasTable("TMP1"));
  ASSERT_TRUE(db.Execute("DROP TABLE TMP1").ok());
}

TEST(InstrumentTest, SelfTimeSubtractsChildren) {
  TimingSink sink;
  auto child = std::make_unique<InstrumentedCursor>(PosCursor(), "scan", &sink,
                                                    std::vector<size_t>{});
  const size_t child_id = child->id();
  auto parent = std::make_unique<InstrumentedCursor>(
      std::make_unique<SortCursor>(std::move(child),
                                   std::vector<SortKey>{{0, true}}),
      "sort", &sink, std::vector<size_t>{child_id});
  auto rows = MaterializeAll(parent.get()).ValueOrDie();
  EXPECT_EQ(rows.size(), 3u);
  ASSERT_EQ(sink.size(), 2u);
  EXPECT_EQ(sink[1].rows, 3u);
  EXPECT_GE(sink[1].inclusive_seconds, sink[0].inclusive_seconds);
  EXPECT_GE(SelfSeconds(sink, 1), 0.0);
}

}  // namespace
}  // namespace exec
}  // namespace tango
