// PlanCache unit tests: hit/miss accounting, per-shard LRU eviction, table
// and cost-drift invalidation, the stale -> Refresh re-optimization
// protocol, metrics mirroring, and a concurrent hammer for the sanitizers.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "adapt/plan_cache.h"
#include "obs/metrics.h"

namespace tango {
namespace {

adapt::PlanKey Key(uint64_t fingerprint, const std::string& config = "c") {
  adapt::PlanKey key;
  key.fingerprint = fingerprint;
  key.canon = "Q" + std::to_string(fingerprint);
  key.config_key = config;
  return key;
}

adapt::CachedPlan Plan(std::vector<std::string> tables = {"R"},
                       std::vector<double> snapshot = {1.0, 2.0}) {
  adapt::CachedPlan plan;
  plan.tables = std::move(tables);
  plan.factor_snapshot = std::move(snapshot);
  return plan;
}

TEST(PlanCacheTest, MissInsertHit) {
  adapt::PlanCache cache(adapt::PlanCacheConfig{});
  EXPECT_EQ(cache.Lookup(Key(1), {1.0, 2.0}), nullptr);
  const adapt::PlanCache::EntryPtr inserted = cache.Insert(Key(1), Plan());
  ASSERT_NE(inserted, nullptr);
  const adapt::PlanCache::EntryPtr found = cache.Lookup(Key(1), {1.0, 2.0});
  EXPECT_EQ(found, inserted);
  EXPECT_EQ(cache.size(), 1u);
  const adapt::PlanCache::Counters c = cache.counters();
  EXPECT_EQ(c.misses, 1u);
  EXPECT_EQ(c.hits, 1u);
  EXPECT_EQ(c.inserts, 1u);
}

TEST(PlanCacheTest, ConfigKeySeparatesEntries) {
  // A degraded (site-restricted) plan lives under its own config key and
  // can never be returned for the unrestricted query.
  adapt::PlanCache cache(adapt::PlanCacheConfig{});
  const auto primary = cache.Insert(Key(1, "restrict=0"), Plan());
  const auto degraded = cache.Insert(Key(1, "restrict=1"), Plan());
  EXPECT_NE(primary, degraded);
  EXPECT_EQ(cache.Lookup(Key(1, "restrict=0"), {1.0, 2.0}), primary);
  EXPECT_EQ(cache.Lookup(Key(1, "restrict=1"), {1.0, 2.0}), degraded);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(PlanCacheTest, LruEvictionPerShard) {
  adapt::PlanCacheConfig config;
  config.capacity = 2;
  config.shards = 1;
  adapt::PlanCache cache(config);
  cache.Insert(Key(1), Plan());
  cache.Insert(Key(2), Plan());
  // Touch 1 so 2 is the least recently used.
  EXPECT_NE(cache.Lookup(Key(1), {1.0, 2.0}), nullptr);
  cache.Insert(Key(3), Plan());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.counters().evictions, 1u);
  EXPECT_NE(cache.Lookup(Key(1), {1.0, 2.0}), nullptr);
  EXPECT_EQ(cache.Lookup(Key(2), {1.0, 2.0}), nullptr);
  EXPECT_NE(cache.Lookup(Key(3), {1.0, 2.0}), nullptr);
}

TEST(PlanCacheTest, InvalidateTablesIsCaseInsensitive) {
  adapt::PlanCache cache(adapt::PlanCacheConfig{});
  cache.Insert(Key(1), Plan({"R"}));
  cache.Insert(Key(2), Plan({"S"}));
  cache.Insert(Key(3), Plan({"R", "S"}));
  cache.InvalidateTables({"r"});
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.counters().invalidations, 2u);
  EXPECT_EQ(cache.Lookup(Key(1), {1.0, 2.0}), nullptr);
  EXPECT_NE(cache.Lookup(Key(2), {1.0, 2.0}), nullptr);
  EXPECT_EQ(cache.Lookup(Key(3), {1.0, 2.0}), nullptr);
}

TEST(PlanCacheTest, CostDriftInvalidates) {
  adapt::PlanCacheConfig config;
  config.cost_drift_threshold = 0.5;
  adapt::PlanCache cache(config);
  cache.Insert(Key(1), Plan({"R"}, {1.0, 2.0}));
  // Within the threshold: still a hit.
  EXPECT_NE(cache.Lookup(Key(1), {1.2, 2.0}), nullptr);
  // A factor doubled (relative drift 1.0 > 0.5): the entry was priced under
  // costs that no longer hold — invalidated, reported as a miss.
  EXPECT_EQ(cache.Lookup(Key(1), {2.0, 2.0}), nullptr);
  EXPECT_EQ(cache.size(), 0u);
  const adapt::PlanCache::Counters c = cache.counters();
  EXPECT_EQ(c.invalidations, 1u);
  EXPECT_EQ(c.misses, 1u);
  EXPECT_EQ(c.hits, 1u);
}

TEST(PlanCacheTest, StaleEntryIsReturnedAndRefreshClears) {
  adapt::PlanCache cache(adapt::PlanCacheConfig{});
  const auto entry = cache.Insert(Key(1), Plan());
  entry->stale.store(true);
  // A stale entry IS handed back (the caller re-optimizes it in place),
  // counted separately from fresh hits.
  EXPECT_EQ(cache.Lookup(Key(1), {1.0, 2.0}), entry);
  EXPECT_EQ(cache.counters().stale_hits, 1u);
  EXPECT_EQ(cache.counters().hits, 0u);
  entry->Refresh(Plan({"R"}, {3.0, 4.0}));
  EXPECT_FALSE(entry->stale.load());
  EXPECT_EQ(entry->reoptimized.load(), 1u);
  ASSERT_NE(entry->plan(), nullptr);
  EXPECT_EQ(entry->plan()->factor_snapshot, (std::vector<double>{3.0, 4.0}));
  EXPECT_EQ(cache.Lookup(Key(1), {3.0, 4.0}), entry);
  EXPECT_EQ(cache.counters().hits, 1u);
}

TEST(PlanCacheTest, MetricsMirroring) {
  obs::MetricsRegistry metrics;
  adapt::PlanCacheConfig config;
  config.capacity = 2;
  config.shards = 1;
  adapt::PlanCache cache(config, &metrics);
  cache.Lookup(Key(1), {1.0, 2.0});          // miss
  cache.Insert(Key(1), Plan({"R"}));         // insert
  cache.Lookup(Key(1), {1.0, 2.0});          // hit
  cache.Insert(Key(2), Plan({"S"}));         // insert
  cache.Insert(Key(3), Plan({"S"}));         // insert + eviction
  cache.InvalidateTables({"S"});             // drops whatever reads S
  EXPECT_EQ(metrics.counter("plancache.miss").load(), 1u);
  EXPECT_EQ(metrics.counter("plancache.hit").load(), 1u);
  EXPECT_EQ(metrics.counter("plancache.insert").load(), 3u);
  EXPECT_EQ(metrics.counter("plancache.eviction").load(), 1u);
  EXPECT_GE(metrics.counter("plancache.invalidation").load(), 1u);
  EXPECT_EQ(metrics.gauge("plancache.entries").load(),
            static_cast<int64_t>(cache.size()));
}

TEST(PlanCacheTest, ConcurrentHammer) {
  adapt::PlanCacheConfig config;
  config.capacity = 8;
  config.shards = 4;
  adapt::PlanCache cache(config);
  constexpr int kThreads = 4;
  constexpr int kIterations = 400;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cache, t] {
      for (int i = 0; i < kIterations; ++i) {
        const uint64_t fp = static_cast<uint64_t>((t * 7 + i) % 16 + 1);
        const adapt::PlanCache::EntryPtr entry =
            cache.Lookup(Key(fp), {1.0, 2.0});
        if (entry == nullptr) {
          cache.Insert(Key(fp), Plan({fp % 2 == 0 ? "R" : "S"}));
        } else {
          entry->executions.fetch_add(1);
          if (i % 17 == 0) entry->Refresh(Plan());
        }
        if (i % 31 == 0) cache.InvalidateTables({"R"});
      }
    });
  }
  for (std::thread& w : workers) w.join();
  const adapt::PlanCache::Counters c = cache.counters();
  EXPECT_EQ(c.hits + c.stale_hits + c.misses,
            static_cast<uint64_t>(kThreads * kIterations));
  EXPECT_LE(cache.size(), config.capacity);
}

}  // namespace
}  // namespace tango
