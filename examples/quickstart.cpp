// Quickstart: the paper's running example (Section 2.2, Figure 3).
//
// Loads the POSITION relation of Figure 3(a) into the embedded DBMS, asks
// TANGO the running-example query — "for each position tuple, the number of
// employees assigned to that position over time, sorted by position" — and
// prints the chosen plan, the SQL the middleware sent to the DBMS, and the
// result (Figure 3(b)).
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart

#include <cstdio>

#include "tango/middleware.h"

int main() {
  using namespace tango;

  // 1. A conventional DBMS with the POSITION relation of Figure 3(a).
  dbms::Engine db;
  db.Execute("CREATE TABLE POSITION (PosID INT, EmpName VARCHAR(20), "
             "T1 INT, T2 INT)")
      .status();
  db.Execute("INSERT INTO POSITION VALUES "
             "(1, 'Tom', 2, 20), (1, 'Jane', 5, 25), (2, 'Tom', 5, 10)")
      .status();
  db.Execute("ANALYZE").status();

  // 2. TANGO on top of it.
  Middleware middleware(&db);

  // 3. The running example in TANGO's temporal SQL: a temporal aggregation
  //    subquery temporally joined back to POSITION.
  const char* query =
      "TEMPORAL SELECT C.PosID, EmpName, T1, T2, CountOfPosID "
      "FROM (TEMPORAL SELECT PosID, COUNT(PosID) AS CountOfPosID "
      "      FROM POSITION GROUP BY PosID OVER TIME) C, "
      "     POSITION P "
      "WHERE C.PosID = P.PosID "
      "ORDER BY PosID, T1, EmpName DESC";

  auto prepared = middleware.Prepare(query);
  if (!prepared.ok()) {
    std::printf("prepare failed: %s\n", prepared.status().ToString().c_str());
    return 1;
  }
  std::printf("chosen physical plan (%zu classes, %zu elements explored):\n%s\n",
              prepared.ValueOrDie().num_classes,
              prepared.ValueOrDie().num_elements,
              prepared.ValueOrDie().plan->ToString().c_str());

  auto result = middleware.Execute(prepared.ValueOrDie().plan);
  if (!result.ok()) {
    std::printf("execution failed: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("SQL sent to the DBMS:\n");
  for (const std::string& sql : result.ValueOrDie().sql_statements) {
    std::printf("  %s\n", sql.c_str());
  }

  std::printf("\nquery result (Figure 3(b)):\n");
  std::printf("  %-6s %-8s %-4s %-4s %s\n", "PosID", "EmpName", "T1", "T2",
              "COUNTofPosID");
  for (const Tuple& row : result.ValueOrDie().rows) {
    std::printf("  %-6s %-8s %-4s %-4s %s\n", row[0].ToString().c_str(),
                row[1].ToString().c_str(), row[2].ToString().c_str(),
                row[3].ToString().c_str(), row[4].ToString().c_str());
  }
  return 0;
}
