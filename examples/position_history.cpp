// Scenario: staffing history over a window — the workload class the paper's
// introduction motivates (time-variant HR data).
//
// On the synthetic UIS dataset, asks: "between 1995 and 1998, how many
// employees held each well-paid position over time?", i.e. Query 2's shape:
// a temporal aggregation temporally joined back to the qualifying POSITION
// tuples. Shows how the optimizer splits the work between the middleware
// and the DBMS and how the per-algorithm timings are reported.
//
// Run:  ./build/examples/position_history

#include <cstdio>

#include "common/date.h"
#include "exec/instrument.h"
#include "tango/middleware.h"
#include "workload/uis.h"

int main() {
  using namespace tango;

  dbms::Engine db;
  workload::UisOptions options;
  options.position_rows = 20000;  // keep the example snappy
  options.employee_rows = 1000;
  if (!workload::LoadUis(&db, options).ok()) {
    std::printf("workload load failed\n");
    return 1;
  }

  Middleware middleware(&db);

  const std::string d1 = std::to_string(date::Jan1(1995));
  const std::string d2 = std::to_string(date::Jan1(1998));
  const std::string query =
      "TEMPORAL SELECT C.PosID, EmpName, PayRate, CNT, T1, T2 "
      "FROM (TEMPORAL SELECT PosID, COUNT(PosID) AS CNT "
      "      FROM POSITION GROUP BY PosID OVER TIME) C, "
      "     POSITION P "
      "WHERE C.PosID = P.PosID AND PayRate > 10 "
      "  AND OVERLAPS PERIOD (" + d1 + ", " + d2 + ") "
      "ORDER BY PosID";

  auto prepared = middleware.Prepare(query);
  if (!prepared.ok()) {
    std::printf("prepare failed: %s\n", prepared.status().ToString().c_str());
    return 1;
  }
  std::printf("plan:\n%s\n", prepared.ValueOrDie().plan->ToString().c_str());

  auto result = middleware.Execute(prepared.ValueOrDie().plan);
  if (!result.ok()) {
    std::printf("execution failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  const auto& exec = result.ValueOrDie();
  std::printf("%zu result rows in %.3fs\n\n", exec.rows.size(),
              exec.elapsed_seconds);

  std::printf("first rows (PosID, EmpName, PayRate, staff count, period):\n");
  for (size_t i = 0; i < exec.rows.size() && i < 8; ++i) {
    const Tuple& r = exec.rows[i];
    std::printf("  pos %-6s %-9s $%-6.2f count=%s  [%s, %s)\n",
                r[0].ToString().c_str(), r[1].ToString().c_str(),
                r[2].AsDouble(), r[3].ToString().c_str(),
                date::Format(r[4].AsInt()).c_str(),
                date::Format(r[5].AsInt()).c_str());
  }

  std::printf("\nper-algorithm wall time (the feedback the adaptation uses):\n");
  for (size_t i = 0; i < exec.timings.size(); ++i) {
    std::printf("  %-12s %8.1f ms inclusive, %8.1f ms self, %zu rows\n",
                exec.timings[i].label.c_str(),
                exec.timings[i].inclusive_seconds * 1e3,
                exec::SelfSeconds(exec.timings, i) * 1e3,
                static_cast<size_t>(exec.timings[i].rows));
  }
  return 0;
}
