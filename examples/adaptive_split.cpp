// Scenario: the "Adaptable" in the paper's title. TANGO starts with a cost
// model that wrongly believes the DBMS computes temporal aggregation
// cheaply, keeps the whole query in the DBMS — and then measures the actual
// running times, feeds them back into the cost factors, and repartitions
// the same query into the middleware on subsequent runs.
//
// Run:  ./build/examples/adaptive_split

#include <cstdio>

#include "cost/calibrate.h"
#include "tango/middleware.h"
#include "workload/uis.h"

namespace {

bool UsesMiddlewareAggregation(const tango::optimizer::PhysPlanPtr& plan) {
  if (plan->algorithm == tango::optimizer::Algorithm::kTAggrM) return true;
  for (const auto& c : plan->children) {
    if (UsesMiddlewareAggregation(c)) return true;
  }
  return false;
}

}  // namespace

int main() {
  using namespace tango;

  dbms::Engine db;
  workload::UisOptions options;
  options.position_rows = 20000;
  options.employee_rows = 1;
  if (!workload::LoadUis(&db, options).ok()) {
    std::printf("workload load failed\n");
    return 1;
  }

  Middleware::Config config;
  config.adapt = true;          // the feedback loop
  config.feedback_alpha = 0.5;  // aggressive smoothing for the demo
  Middleware middleware(&db, config);

  // Calibrate the simple factors, then plant the wrong belief.
  cost::Calibrator calibrator(&middleware.connection());
  if (!calibrator.Calibrate(&middleware.cost_model()).ok()) {
    std::printf("calibration failed\n");
    return 1;
  }
  middleware.cost_model().factors().taggd1 = 0.0005;
  middleware.cost_model().factors().taggd2 = 0.0005;
  std::printf("planted belief: DBMS temporal aggregation is nearly free\n\n");

  const char* query =
      "TEMPORAL SELECT PosID, T1, T2, COUNT(PosID) AS CNT FROM POSITION "
      "GROUP BY PosID OVER TIME ORDER BY PosID";

  for (int run = 1; run <= 5; ++run) {
    auto prepared = middleware.Prepare(query);
    if (!prepared.ok()) {
      std::printf("prepare failed: %s\n",
                  prepared.status().ToString().c_str());
      return 1;
    }
    const bool in_middleware =
        UsesMiddlewareAggregation(prepared.ValueOrDie().plan);
    auto result = middleware.Execute(prepared.ValueOrDie().plan);
    if (!result.ok()) {
      std::printf("execution failed: %s\n",
                  result.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "run %d: aggregation in the %-10s  %.3fs   (p_taggd1 now %.4f)\n",
        run, in_middleware ? "MIDDLEWARE" : "DBMS",
        result.ValueOrDie().elapsed_seconds,
        middleware.cost_model().factors().taggd1);
  }
  std::printf("\nThe measured DBMS fragment times flowed back into the cost "
              "factors,\nflipping the partitioning decision — no manual "
              "tuning involved.\n");
  return 0;
}
