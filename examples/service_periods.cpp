// Scenario: consolidated service records — exercises the operators the
// paper lists as later additions to TANGO (duplicate elimination,
// coalescing, difference), all of which run in the middleware's execution
// engine.
//
//  1. COALESCE merges each employee's consecutive/overlapping stints into
//     maximal service periods ("when was EMP42 continuously employed?").
//  2. DISTINCT lists the positions each employee ever held.
//  3. EXCEPT finds employees active in the early era but not later.
//
// Run:  ./build/examples/service_periods

#include <cstdio>

#include "common/date.h"
#include "tango/middleware.h"
#include "workload/uis.h"

int main() {
  using namespace tango;

  dbms::Engine db;
  workload::UisOptions options;
  options.position_rows = 15000;
  options.employee_rows = 1;
  if (!workload::LoadUis(&db, options).ok()) {
    std::printf("workload load failed\n");
    return 1;
  }

  Middleware middleware(&db);

  // 1. Coalesced service periods for a handful of employees.
  {
    auto result = middleware.Query(
        "TEMPORAL SELECT COALESCE EmpName FROM POSITION "
        "WHERE EmpID < 40 ORDER BY EmpName, T1");
    if (!result.ok()) {
      std::printf("coalesce query failed: %s\n",
                  result.status().ToString().c_str());
      return 1;
    }
    std::printf("coalesced service periods (%zu rows):\n",
                result.ValueOrDie().rows.size());
    for (size_t i = 0; i < result.ValueOrDie().rows.size() && i < 6; ++i) {
      const Tuple& r = result.ValueOrDie().rows[i];
      std::printf("  %-9s served [%s, %s)\n", r[0].ToString().c_str(),
                  date::Format(r[1].AsInt()).c_str(),
                  date::Format(r[2].AsInt()).c_str());
    }
  }

  // 2. Distinct positions per employee (duplicate elimination).
  {
    auto result = middleware.Query(
        "TEMPORAL SELECT DISTINCT EmpName, PosID FROM POSITION "
        "WHERE EmpID < 10");
    if (!result.ok()) {
      std::printf("distinct query failed: %s\n",
                  result.status().ToString().c_str());
      return 1;
    }
    std::printf("\ndistinct (employee, position, period) combinations for "
                "ten employees: %zu\n",
                result.ValueOrDie().rows.size());
  }

  // 3. Early-era employees who do not appear later (multiset difference).
  {
    // Plain (non-temporal) SELECTs: no implicit period attributes, so the
    // difference is on names alone.
    const std::string cut = std::to_string(date::Jan1(1995));
    auto result = middleware.Query(
        "SELECT DISTINCT EmpName FROM POSITION WHERE T1 < " + cut +
        " EXCEPT SELECT DISTINCT EmpName FROM POSITION WHERE T1 >= " + cut);
    if (!result.ok()) {
      std::printf("except query failed: %s\n",
                  result.status().ToString().c_str());
      return 1;
    }
    std::printf("\nemployees with pre-1995 assignments and none after: %zu\n",
                result.ValueOrDie().rows.size());
  }
  return 0;
}
