// Scenario: concurrent assignments — Query 3's shape. "Which pairs of
// employees held the same position at the same time, and when?"
//
// Demonstrates the temporal self-join and the cost-based site decision:
// when the query projects only a few columns, the join result is small and
// the DBMS keeps the temporal join (one small transfer); when the query
// asks for the full rows, the result outgrows the join's arguments and the
// optimizer moves the join into the middleware — the paper's Query 3
// lesson ("allocating processing to the middleware can be advantageous if
// the result size is bigger than the argument sizes").
//
// Run:  ./build/examples/overlap_pairs

#include <cstdio>

#include "common/date.h"
#include "cost/calibrate.h"
#include "tango/middleware.h"
#include "workload/uis.h"

namespace {

bool UsesMiddlewareJoin(const tango::optimizer::PhysPlanPtr& plan) {
  if (plan->algorithm == tango::optimizer::Algorithm::kTJoinM) return true;
  for (const auto& c : plan->children) {
    if (UsesMiddlewareJoin(c)) return true;
  }
  return false;
}

}  // namespace

int main() {
  using namespace tango;

  dbms::Engine db;
  workload::UisOptions options;
  options.position_rows = 25000;
  options.employee_rows = 1;
  if (!workload::LoadUis(&db, options).ok()) {
    std::printf("workload load failed\n");
    return 1;
  }

  Middleware middleware(&db);
  // Fit the cost factors to this machine (the §5.1 calibration).
  cost::Calibrator calibrator(&middleware.connection());
  if (!calibrator.Calibrate(&middleware.cost_model()).ok()) {
    std::printf("calibration failed\n");
    return 1;
  }

  const std::string cutoff = std::to_string(date::Jan1(1997));
  const std::string narrow =
      "TEMPORAL SELECT A.PosID, A.EmpName, B.EmpName "
      "FROM POSITION A, POSITION B "
      "WHERE A.PosID = B.PosID AND A.EmpName < B.EmpName "
      "  AND A.T1 < " + cutoff + " AND B.T1 < " + cutoff + " "
      "ORDER BY PosID";
  const std::string wide =
      "TEMPORAL SELECT A.PosID, A.EmpName, A.PayRate, A.Dept, A.Status, "
      "B.EmpName, B.EmpID, B.PayRate, B.Dept, B.Status "
      "FROM POSITION A, POSITION B "
      "WHERE A.PosID = B.PosID AND A.EmpName < B.EmpName "
      "  AND A.T1 < " + cutoff + " AND B.T1 < " + cutoff + " "
      "ORDER BY PosID";

  for (const auto& [label, query] :
       {std::pair<const char*, std::string>{"narrow projection", narrow},
        {"full rows", wide}}) {

    auto prepared = middleware.Prepare(query);
    if (!prepared.ok()) {
      std::printf("prepare failed: %s\n",
                  prepared.status().ToString().c_str());
      return 1;
    }
    auto result = middleware.Execute(prepared.ValueOrDie().plan);
    if (!result.ok()) {
      std::printf("execution failed: %s\n",
                  result.status().ToString().c_str());
      return 1;
    }
    const auto& exec = result.ValueOrDie();
    std::printf("%s: %zu overlapping pairs in %.3fs — temporal join ran in "
                "the %s\n",
                label, exec.rows.size(), exec.elapsed_seconds,
                UsesMiddlewareJoin(prepared.ValueOrDie().plan) ? "MIDDLEWARE"
                                                               : "DBMS");
    const bool is_narrow = exec.schema.num_columns() == 5;
    const size_t other = is_narrow ? 2 : 5;  // B.EmpName's position
    for (size_t i = 0; i < exec.rows.size() && i < 3; ++i) {
      const Tuple& r = exec.rows[i];
      const size_t cols = r.size();
      // The period is always the last two (implicit) columns.
      std::printf("  pos %-6s %-9s with %-9s during [%s, %s)\n",
                  r[0].ToString().c_str(), r[1].ToString().c_str(),
                  r[other].ToString().c_str(),
                  date::Format(r[cols - 2].AsInt()).c_str(),
                  date::Format(r[cols - 1].AsInt()).c_str());
    }
  }
  return 0;
}
