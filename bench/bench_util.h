#ifndef TANGO_BENCH_BENCH_UTIL_H_
#define TANGO_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "cost/calibrate.h"
#include "optimizer/phys.h"
#include "tango/middleware.h"
#include "workload/uis.h"

namespace tango {
namespace bench {

/// Scale factor for the experiments: 1.0 = the paper's sizes (83,857-row
/// POSITION, 49,972-row EMPLOYEE). Override with TANGO_BENCH_SCALE.
inline double Scale() {
  const char* env = std::getenv("TANGO_BENCH_SCALE");
  if (env != nullptr) {
    const double s = std::atof(env);
    if (s > 0) return s;
  }
  return 1.0;
}

inline size_t Scaled(size_t n) {
  return static_cast<size_t>(static_cast<double>(n) * Scale());
}

/// Hand-built physical plan node (benches pin the exact paper plans).
inline optimizer::PhysPlanPtr Node(optimizer::Algorithm alg, algebra::OpPtr op,
                                   std::vector<optimizer::PhysPlanPtr> children) {
  auto node = std::make_shared<optimizer::PhysPlan>();
  node->algorithm = alg;
  node->op = std::move(op);
  node->site = optimizer::IsDbmsAlgorithm(node->algorithm)
                   ? optimizer::Site::kDbms
                   : optimizer::Site::kMiddleware;
  node->children = std::move(children);
  return node;
}

/// Synthetic sort / transfer operators for enforcer-style nodes.
inline algebra::OpPtr SortOpOf(const Schema& schema,
                               std::vector<algebra::SortSpec> keys) {
  auto op = std::make_shared<algebra::Op>();
  op->kind = algebra::OpKind::kSort;
  op->schema = schema;
  op->sort_keys = std::move(keys);
  return op;
}

inline algebra::OpPtr TransferOpOf(algebra::OpKind kind, const Schema& schema) {
  auto op = std::make_shared<algebra::Op>();
  op->kind = kind;
  op->schema = schema;
  return op;
}

/// Executes a plan and returns (seconds, rows); aborts on error.
inline std::pair<double, size_t> Run(Middleware* mw,
                                     const optimizer::PhysPlanPtr& plan) {
  auto result = mw->Execute(plan);
  if (!result.ok()) {
    std::fprintf(stderr, "plan execution failed: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  return {result.ValueOrDie().elapsed_seconds, result.ValueOrDie().rows.size()};
}

/// Best-of-N timing for close races (scheduler noise otherwise dominates
/// sub-second measurements).
inline std::pair<double, size_t> RunBest(Middleware* mw,
                                         const optimizer::PhysPlanPtr& plan,
                                         int reps = 2) {
  double best = 1e100;
  size_t rows = 0;
  for (int i = 0; i < reps; ++i) {
    const auto [t, n] = Run(mw, plan);
    best = std::min(best, t);
    rows = n;
  }
  return {best, rows};
}

/// Calibrates the middleware's cost factors against the live substrate
/// (the paper's §5.1 procedure) and prints the fitted factors.
inline void CalibrateOrDie(Middleware* mw) {
  cost::Calibrator calibrator(&mw->connection());
  auto report = calibrator.Calibrate(&mw->cost_model());
  if (!report.ok()) {
    std::fprintf(stderr, "calibration failed: %s\n",
                 report.status().ToString().c_str());
    std::abort();
  }
  std::printf("%s\n\n", report.ValueOrDie().ToString().c_str());
}

/// Order-insensitive checksum so plans can be cross-checked.
inline uint64_t Checksum(const std::vector<Tuple>& rows) {
  uint64_t sum = 0;
  for (const Tuple& t : rows) {
    uint64_t h = 14695981039346656037ull;
    for (const Value& v : t) h = h * 1099511628211ull + v.Hash();
    sum += h;
  }
  return sum;
}

/// Snapshot-equivalence checksum for temporal results: the non-period
/// values hashed and weighted by the period's overlap with a window.
/// Plans that split constant periods differently (but agree at every time
/// point inside the window) compare equal under this sum.
inline uint64_t SnapshotChecksum(const std::vector<Tuple>& rows, size_t t1,
                                 size_t t2, int64_t w_start, int64_t w_end) {
  uint64_t sum = 0;
  for (const Tuple& t : rows) {
    uint64_t h = 14695981039346656037ull;
    for (size_t i = 0; i < t.size(); ++i) {
      if (i == t1 || i == t2) continue;
      h = h * 1099511628211ull + t[i].Hash();
    }
    const int64_t lo = std::max(w_start, t[t1].AsInt());
    const int64_t hi = std::min(w_end, t[t2].AsInt());
    if (hi > lo) sum += h * static_cast<uint64_t>(hi - lo);
  }
  return sum;
}

/// Simple PASS/FAIL shape check reporting.
class ShapeChecks {
 public:
  void Check(bool ok, const std::string& what) {
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what.c_str());
    if (!ok) ++failures_;
  }
  int failures() const { return failures_; }

 private:
  int failures_ = 0;
};

}  // namespace bench
}  // namespace tango

#endif  // TANGO_BENCH_BENCH_UTIL_H_
