// E8: operator micro-benchmarks (google-benchmark).
//
// * TAGGR^M vs the TAGGR^D SQL shape (the asymmetry behind Figure 8);
// * TRANSFER^M at different row-prefetch settings (§3.2 observes that the
//   JDBC row-prefetch affects transfer performance);
// * direct-path bulk load vs row-at-a-time INSERTs (§3.2's SQL*Loader
//   discussion);
// * middleware external sort: in-memory vs spilling runs;
// * merge join vs the DBMS's hash/merge joins.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "dbms/connection.h"
#include "exec/join.h"
#include "exec/sort.h"
#include "exec/taggr.h"
#include "workload/uis.h"

namespace tango {
namespace {

Schema ProbeSchema() {
  return Schema({{"", "G", DataType::kInt},
                 {"", "V", DataType::kInt},
                 {"", "T1", DataType::kInt},
                 {"", "T2", DataType::kInt}});
}

std::vector<Tuple> ProbeRows(size_t n, int64_t groups) {
  Rng rng(11);
  std::vector<Tuple> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const int64_t t1 = rng.Uniform(0, 3000);
    rows.push_back({Value(rng.Uniform(0, groups - 1)), Value(rng.Uniform(0, 99)),
                    Value(t1), Value(t1 + rng.Uniform(1, 300))});
  }
  std::sort(rows.begin(), rows.end(), [](const Tuple& a, const Tuple& b) {
    if (int c = a[0].Compare(b[0]); c != 0) return c < 0;
    return a[2] < b[2];
  });
  return rows;
}

/// A DBMS preloaded with the probe relation (shared across iterations).
struct ProbeDb {
  dbms::Engine db;
  explicit ProbeDb(size_t n) {
    (void)db.Execute("CREATE TABLE PROBE (G INT, V INT, T1 INT, T2 INT)");
    (void)db.BulkLoad("PROBE", ProbeRows(n, 256));
    (void)db.Execute("ANALYZE PROBE");
  }
};

void BM_TAggrMiddleware(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto rows = ProbeRows(n, 256);
  Schema out({{"", "G", DataType::kInt},
              {"", "T1", DataType::kInt},
              {"", "T2", DataType::kInt},
              {"", "C", DataType::kInt}});
  for (auto _ : state) {
    exec::TemporalAggregationCursor agg(
        std::make_unique<VectorCursor>(ProbeSchema(), rows), {0}, 2, 3,
        {{AggFunc::kCount, 0, false}}, out);
    auto result = MaterializeAll(&agg);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_TAggrMiddleware)->Arg(4096)->Arg(16384)->Arg(65536);

void BM_TAggrDbmsSql(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  ProbeDb probe(n);
  const char* q =
      "SELECT R.G AS G, P.T1 AS T1, P.T2 AS T2, COUNT(*) AS C "
      "FROM PROBE R, "
      " (SELECT A.G AS G, A.T AS T1, MIN(B.T) AS T2 "
      "  FROM (SELECT G, T1 AS T FROM PROBE UNION SELECT G, T2 AS T FROM PROBE) A, "
      "       (SELECT G, T1 AS T FROM PROBE UNION SELECT G, T2 AS T FROM PROBE) B "
      "  WHERE A.G = B.G AND A.T < B.T GROUP BY A.G, A.T) P "
      "WHERE R.G = P.G AND R.T1 <= P.T1 AND P.T2 <= R.T2 "
      "GROUP BY R.G, P.T1, P.T2";
  for (auto _ : state) {
    auto result = probe.db.Execute(q);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_TAggrDbmsSql)->Arg(4096)->Arg(16384);

void BM_TransferRowPrefetch(benchmark::State& state) {
  static ProbeDb probe(32768);
  dbms::WireConfig wire;
  wire.row_prefetch = static_cast<size_t>(state.range(0));
  dbms::Connection conn(&probe.db, wire);
  for (auto _ : state) {
    auto cur = conn.ExecuteQuery("SELECT G, V, T1, T2 FROM PROBE");
    auto rows = MaterializeAll(cur.ValueOrDie().get());
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(32768 * state.iterations());
}
BENCHMARK(BM_TransferRowPrefetch)->Arg(1)->Arg(16)->Arg(256)->Arg(4096);

void BM_BulkLoadVsInsert(benchmark::State& state) {
  const bool bulk = state.range(0) == 1;
  const size_t n = 2048;
  auto rows = ProbeRows(n, 64);
  dbms::Engine db;
  dbms::WireConfig wire;
  dbms::Connection conn(&db, wire);
  int table_id = 0;
  for (auto _ : state) {
    const std::string table = "LOAD_" + std::to_string(table_id++);
    (void)db.Execute("CREATE TABLE " + table + " (G INT, V INT, T1 INT, T2 INT)");
    if (bulk) {
      (void)conn.BulkLoad(table, rows);
    } else {
      (void)conn.InsertLoad(table, rows);
    }
    (void)db.Execute("DROP TABLE " + table);
  }
  state.SetLabel(bulk ? "direct-path (SQL*Loader style)" : "INSERT per row");
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_BulkLoadVsInsert)->Arg(1)->Arg(0);

void BM_ExternalSort(benchmark::State& state) {
  const size_t budget = static_cast<size_t>(state.range(0));
  auto rows = ProbeRows(65536, 1024);
  for (auto _ : state) {
    exec::SortCursor sort(std::make_unique<VectorCursor>(ProbeSchema(), rows),
                          {{1, true}, {2, true}}, budget);
    auto out = MaterializeAll(&sort);
    benchmark::DoNotOptimize(out);
  }
  state.SetLabel(budget >= (64u << 20) ? "in-memory" : "spilling");
  state.SetItemsProcessed(65536 * state.iterations());
}
BENCHMARK(BM_ExternalSort)->Arg(64 << 20)->Arg(512 << 10);

void BM_MergeJoinMiddleware(benchmark::State& state) {
  auto left = ProbeRows(32768, 512);
  auto right = ProbeRows(16384, 512);
  for (auto _ : state) {
    exec::MergeJoinCursor join(
        std::make_unique<VectorCursor>(ProbeSchema(), left),
        std::make_unique<VectorCursor>(ProbeSchema(), right), {0}, {0});
    auto out = MaterializeAll(&join);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_MergeJoinMiddleware);

void BM_JoinDbms(benchmark::State& state) {
  static ProbeDb probe(32768);
  const auto method = state.range(0) == 0
                          ? dbms::SessionConfig::JoinMethod::kHash
                          : dbms::SessionConfig::JoinMethod::kMerge;
  probe.db.config().forced_join = method;
  for (auto _ : state) {
    auto result = probe.db.Execute(
        "SELECT A.V FROM PROBE A, PROBE B WHERE A.G = B.G AND A.T1 = B.T2");
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(state.range(0) == 0 ? "hash" : "sort-merge");
}
BENCHMARK(BM_JoinDbms)->Arg(0)->Arg(1);

}  // namespace
}  // namespace tango

BENCHMARK_MAIN();
