// Reproduces Figure 11(a): Query 3 — a temporal self-join ("for each
// position starting before X, all pairs of employees that occupied it at
// the same time, sorted by position"), varying the maximum period start X.
//
//   Plan 1: everything in the DBMS (join + overlap + GREATEST/LEAST in SQL)
//   Plan 2: temporal join in the middleware
//
// Expected shape (paper): Plan 1 wins for small X; once X reaches ~1996
// (about 65% of POSITION periods start in 1995 or later) the join result
// outgrows its arguments and Plan 2 wins; the optimizer switches plans on
// cost for the later points.

#include "common/date.h"
#include "bench_util.h"

namespace tango {
namespace bench {
namespace {

using optimizer::Algorithm;
using optimizer::PhysPlanPtr;

struct Query3Plans {
  PhysPlanPtr plan1, plan2;
  algebra::OpPtr initial;  // the logical plan fed to the optimizer
};

Query3Plans BuildPlans(dbms::Engine* db, int64_t max_start) {
  const Schema schema =
      db->catalog().GetTable("POSITION").ValueOrDie()->schema();
  auto scan_a = algebra::Scan("POSITION", schema, "A").ValueOrDie();
  auto scan_b = algebra::Scan("POSITION", schema, "B").ValueOrDie();
  auto start_pred = [&](const std::string& qual) {
    return Expr::Binary(BinaryOp::kLt, Expr::ColumnRef(qual + ".T1"),
                        Expr::Int(max_start));
  };
  auto sel_a = algebra::Select(scan_a, start_pred("A")).ValueOrDie();
  auto sel_b = algebra::Select(scan_b, start_pred("B")).ValueOrDie();
  auto tjoin = algebra::TJoin(sel_a, sel_b, {{"A.POSID", "B.POSID"}})
                   .ValueOrDie();
  // Distinct pairs only: A's employee lexicographically before B's.
  auto pair_pred = Expr::Binary(BinaryOp::kLt, Expr::ColumnRef("A.EMPNAME"),
                                Expr::ColumnRef("B.EMPNAME"));
  auto pairs = algebra::Select(tjoin, pair_pred).ValueOrDie();
  // The paper sorts "by the position number" only — an order the
  // middleware temporal join delivers for free.
  auto sorted = algebra::Sort(pairs, {{"A.POSID", true}}).ValueOrDie();

  Query3Plans plans;
  plans.initial = algebra::TransferM(sorted).ValueOrDie();

  const std::vector<algebra::SortSpec> out_keys = {{"POSID", true}};
  auto scan_a_d = Node(Algorithm::kScanD, scan_a, {});
  auto scan_b_d = Node(Algorithm::kScanD, scan_b, {});
  auto sel_a_d = Node(Algorithm::kSelectD, sel_a, {scan_a_d});
  auto sel_b_d = Node(Algorithm::kSelectD, sel_b, {scan_b_d});

  // Plan 1: all DBMS.
  plans.plan1 = Node(
      Algorithm::kTransferM,
      TransferOpOf(algebra::OpKind::kTransferM, pairs->schema),
      {Node(Algorithm::kSortD, SortOpOf(pairs->schema, out_keys),
            {Node(Algorithm::kSelectD, pairs,
                  {Node(Algorithm::kTJoinD, tjoin, {sel_a_d, sel_b_d})})})});

  // Plan 2: temporal join (and the pair filter) in the middleware; the
  // merge-based TJOIN^M needs arguments sorted on PosID, done in the DBMS.
  const std::vector<algebra::SortSpec> arg_keys = {{"POSID", true}};
  auto arg = [&](const algebra::OpPtr& sel, PhysPlanPtr sel_d) {
    return Node(Algorithm::kTransferM,
                TransferOpOf(algebra::OpKind::kTransferM, sel->schema),
                {Node(Algorithm::kSortD, SortOpOf(sel->schema, arg_keys),
                      {sel_d})});
  };
  plans.plan2 = Node(
      Algorithm::kFilterM, pairs,
      {Node(Algorithm::kTJoinM, tjoin,
            {arg(sel_a, sel_a_d), arg(sel_b, sel_b_d)})});
  return plans;
}

int Main() {
  std::printf("=== Figure 11(a): Query 3 (temporal self-join), 2 plans ===\n");
  std::printf("running times in seconds; scale=%.2f\n\n", Scale());

  dbms::Engine db;
  workload::UisOptions opts;
  opts.position_rows = Scaled(opts.position_rows);
  opts.employee_rows = 1;  // EMPLOYEE unused here
  if (!workload::LoadUis(&db, opts).ok()) {
    std::fprintf(stderr, "load failed\n");
    return 1;
  }

  Middleware mw(&db);
  CalibrateOrDie(&mw);
  std::printf("%10s %10s %10s %12s   %s\n", "max start", "plan1", "plan2",
              "result rows", "optimizer picks");

  bool all_agree = true;
  std::vector<double> t1s, t2s;
  std::vector<std::string> picks;
  for (int year = 1988; year <= 1996; ++year) {
    const int64_t max_start = date::Jan1(year);
    Query3Plans plans = BuildPlans(&db, max_start);
    auto r1 = mw.Execute(plans.plan1);
    auto r2 = mw.Execute(plans.plan2);
    if (!r1.ok() || !r2.ok()) {
      std::fprintf(stderr, "execution failed: %s %s\n",
                   r1.status().ToString().c_str(),
                   r2.status().ToString().c_str());
      return 1;
    }
    all_agree = all_agree && Checksum(r1.ValueOrDie().rows) ==
                                 Checksum(r2.ValueOrDie().rows);
    t1s.push_back(r1.ValueOrDie().elapsed_seconds);
    t2s.push_back(r2.ValueOrDie().elapsed_seconds);

    std::string pick = "ERR";
    // The sweep varies only the max-start literal, so every point shares a
    // fingerprint; this probe measures the optimizer's per-point choice,
    // not the plan cache, which would otherwise replay the first point.
    mw.plan_cache().Clear();
    auto prepared = mw.PrepareLogical(plans.initial);
    if (prepared.ok()) {
      std::function<bool(const PhysPlanPtr&)> mw_join =
          [&](const PhysPlanPtr& p) {
            if (p->algorithm == Algorithm::kTJoinM) return true;
            for (const auto& c : p->children) {
              if (mw_join(c)) return true;
            }
            return false;
          };
      pick = mw_join(prepared.ValueOrDie().plan) ? "Plan2" : "Plan1";
    }
    picks.push_back(pick);
    std::printf("%10d %10.3f %10.3f %12zu   %s\n", year, t1s.back(),
                t2s.back(), r1.ValueOrDie().rows.size(), pick.c_str());
  }

  std::printf("\nshape checks (paper: Plan 2 wins once the result outgrows "
              "the arguments, around 1996):\n");
  ShapeChecks checks;
  checks.Check(all_agree, "both plans produce identical results");
  checks.Check(t1s.front() <= t2s.front() * 1.5,
               "all-DBMS plan competitive for the most selective point");
  checks.Check(t2s.back() < t1s.back(),
               "middleware temporal join wins at the largest point");
  checks.Check(picks.back() == "Plan2",
               "optimizer picks the middleware join for the last point");
  checks.Check(picks.front() == "Plan1",
               "optimizer picks the DBMS plan for the first point");
  return checks.failures() == 0 ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace tango

int main() { return tango::bench::Main(); }
