// Plan-cache bench: cold-vs-warm Prepare latency on the Figure-8 Query 1
// workload (a parameterized WHERE variant so warm prepares exercise the
// rebinding path, not just the lookup), plus a re-optimization convergence
// loop — the query is executed until the cached plan's site placement
// stabilizes. Emits one machine-readable JSON summary line at the end.

#include <chrono>

#include "bench_util.h"

namespace tango {
namespace bench {
namespace {

using optimizer::Algorithm;
using optimizer::PhysPlanPtr;

bool Contains(const PhysPlanPtr& plan, Algorithm alg) {
  if (plan->algorithm == alg) return true;
  for (const auto& c : plan->children) {
    if (Contains(c, alg)) return true;
  }
  return false;
}

/// Figure-7 plan class of the optimizer's choice (site placement of the
/// temporal aggregation / its sort).
std::string Classify(const PhysPlanPtr& plan) {
  if (Contains(plan, Algorithm::kTAggrD)) return "Plan3";
  if (Contains(plan, Algorithm::kSortM)) return "Plan2";
  if (Contains(plan, Algorithm::kTAggrM)) return "Plan1";
  return "other";
}

std::string Query(const std::string& table, int64_t threshold) {
  return "TEMPORAL SELECT PosID, T1, T2, COUNT(PosID) AS CNT FROM " + table +
         " WHERE PosID > " + std::to_string(threshold) +
         " GROUP BY PosID OVER TIME ORDER BY PosID";
}

double PrepareSeconds(Middleware* mw, const std::string& sql,
                      Middleware::Prepared* out) {
  const auto start = std::chrono::steady_clock::now();
  auto prepared = mw->Prepare(sql);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  if (!prepared.ok()) {
    std::fprintf(stderr, "prepare failed: %s\n",
                 prepared.status().ToString().c_str());
    std::abort();
  }
  *out = prepared.MoveValueOrDie();
  return std::chrono::duration<double>(elapsed).count();
}

int Main() {
  std::printf("=== Plan cache: cold vs warm prepare + convergence ===\n");
  std::printf("scale=%.2f\n\n", Scale());

  dbms::Engine db;
  workload::UisOptions opts;
  const size_t n = Scaled(20000);
  const std::string table = "POSITION_PC";
  if (!workload::LoadPositionVariant(&db, table, n, opts).ok()) {
    std::fprintf(stderr, "load failed\n");
    return 1;
  }

  Middleware::Config config;
  config.wire.simulate_delay = false;
  config.adapt = false;  // isolate the cache from factor drift
  Middleware mw(&db, config);

  // --- Cold vs warm prepare. Each cold sample clears the cache first; each
  // warm sample uses a fresh literal, so the hit path includes rebinding.
  constexpr int kReps = 20;
  Middleware::Prepared prepared;
  double cold_total = 0, warm_total = 0;
  for (int i = 0; i < kReps; ++i) {
    mw.plan_cache().Clear();
    cold_total += PrepareSeconds(&mw, Query(table, i), &prepared);
  }
  // Seed one entry, then measure hits with rotating literals.
  (void)PrepareSeconds(&mw, Query(table, 0), &prepared);
  size_t warm_hits = 0;
  for (int i = 0; i < kReps; ++i) {
    warm_total += PrepareSeconds(&mw, Query(table, 1 + i % 7), &prepared);
    if (prepared.source == Middleware::Prepared::Source::kCached) ++warm_hits;
  }
  const double cold_ms = cold_total / kReps * 1e3;
  const double warm_ms = warm_total / kReps * 1e3;
  std::printf("prepare: cold %.3fms  warm %.3fms  speedup %.1fx  (%zu/%d "
              "warm hits)\n",
              cold_ms, warm_ms, cold_ms / warm_ms, warm_hits, kReps);

  // --- Convergence: execute until the cached plan's classification (site
  // placement of the temporal aggregation) stops changing and the entry
  // stays fresh. With good statistics this settles immediately; after a
  // mis-estimate the re-optimization path needs exactly one extra run.
  mw.plan_cache().Clear();
  const std::string sql = Query(table, 3);
  std::string placement;
  int runs = 0, reoptimizations = 0;
  constexpr int kMaxRuns = 10;
  for (; runs < kMaxRuns; ++runs) {
    auto p = mw.Prepare(sql);
    if (!p.ok()) {
      std::fprintf(stderr, "prepare failed: %s\n", p.status().ToString().c_str());
      return 1;
    }
    const std::string now = Classify(p.ValueOrDie().plan);
    if (p.ValueOrDie().source == Middleware::Prepared::Source::kReoptimized) {
      ++reoptimizations;
    }
    const bool settled =
        p.ValueOrDie().source == Middleware::Prepared::Source::kCached &&
        now == placement;
    placement = now;
    std::printf("  run %d: %-11s placement=%s\n", runs + 1,
                p.ValueOrDie().source == Middleware::Prepared::Source::kCached
                    ? "cached"
                    : (p.ValueOrDie().source ==
                               Middleware::Prepared::Source::kReoptimized
                           ? "reoptimized"
                           : "fresh"),
                now.c_str());
    if (settled) {
      ++runs;
      break;
    }
    auto r = mw.Execute(p.ValueOrDie());
    if (!r.ok()) {
      std::fprintf(stderr, "execution failed: %s\n",
                   r.status().ToString().c_str());
      return 1;
    }
  }
  std::printf("converged after %d run(s), %d re-optimization(s), "
              "placement=%s\n\n",
              runs, reoptimizations, placement.c_str());

  const adapt::PlanCache::Counters c = mw.plan_cache().counters();
  std::printf("{\"bench\":\"plan_cache\",\"tuples\":%zu,"
              "\"cold_prepare_ms\":%.3f,\"warm_prepare_ms\":%.3f,"
              "\"warm_speedup\":%.2f,\"warm_hits\":%zu,"
              "\"convergence_runs\":%d,\"reoptimizations\":%d,"
              "\"placement\":\"%s\",\"hits\":%llu,\"misses\":%llu,"
              "\"stale_hits\":%llu,\"evictions\":%llu}\n",
              n, cold_ms, warm_ms, cold_ms / warm_ms, warm_hits, runs,
              reoptimizations, placement.c_str(),
              static_cast<unsigned long long>(c.hits),
              static_cast<unsigned long long>(c.misses),
              static_cast<unsigned long long>(c.stale_hits),
              static_cast<unsigned long long>(c.evictions));

  const bool ok = warm_ms < cold_ms && warm_hits == kReps;
  std::printf("[%s] warm prepares hit the cache and are faster than cold\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace tango

int main() { return tango::bench::Main(); }
