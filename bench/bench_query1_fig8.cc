// Reproduces Figure 8: Query 1 ("for each position, the number of employees
// occupying it over time, sorted by position") under three plans, varying
// the POSITION relation size.
//
//   Plan 1: SORT^D in the DBMS, TAGGR^M in the middleware (Fig 7, Plan 1)
//   Plan 2: SORT^M and TAGGR^M in the middleware (Fig 7, Plan 2)
//   Plan 3: everything in the DBMS, temporal aggregation as SQL (Plan 3)
//
// Expected shape (paper): Plans 1-2 significantly outperform Plan 3 — "up
// to ten times faster" — and track each other closely; the optimizer picks
// Plan 1/2 for every size.

#include "bench_util.h"

namespace tango {
namespace bench {
namespace {

using optimizer::Algorithm;
using optimizer::PhysPlanPtr;

struct Query1Plans {
  algebra::OpPtr scan;
  algebra::OpPtr agg;
  PhysPlanPtr plan1, plan2, plan3;
};

Query1Plans BuildPlans(dbms::Engine* db, const std::string& table) {
  Query1Plans plans;
  const Schema schema = db->catalog().GetTable(table).ValueOrDie()->schema();
  plans.scan = algebra::Scan(table, schema).ValueOrDie();
  plans.agg =
      algebra::TAggregate(plans.scan, {"POSID"},
                          {{AggFunc::kCount, "POSID", "CNT"}})
          .ValueOrDie();
  const std::vector<algebra::SortSpec> arg_keys = {{"POSID", true}, {"T1", true}};

  auto scan_d = Node(Algorithm::kScanD, plans.scan, {});
  // Plan 1: TAGGR^M( T^M( SORT^D( scan ) ) ).
  plans.plan1 = Node(
      Algorithm::kTAggrM, plans.agg,
      {Node(Algorithm::kTransferM,
            TransferOpOf(algebra::OpKind::kTransferM, plans.scan->schema),
            {Node(Algorithm::kSortD, SortOpOf(plans.scan->schema, arg_keys),
                  {scan_d})})});
  // Plan 2: TAGGR^M( SORT^M( T^M( scan ) ) ).
  plans.plan2 = Node(
      Algorithm::kTAggrM, plans.agg,
      {Node(Algorithm::kSortM, SortOpOf(plans.scan->schema, arg_keys),
            {Node(Algorithm::kTransferM,
                  TransferOpOf(algebra::OpKind::kTransferM, plans.scan->schema),
                  {scan_d})})});
  // Plan 3: T^M( SORT^D( TAGGR^D( scan ) ) ).
  plans.plan3 = Node(
      Algorithm::kTransferM,
      TransferOpOf(algebra::OpKind::kTransferM, plans.agg->schema),
      {Node(Algorithm::kSortD, SortOpOf(plans.agg->schema, arg_keys),
            {Node(Algorithm::kTAggrD, plans.agg, {scan_d})})});
  return plans;
}

/// Which of the three plans the optimizer's choice corresponds to.
std::string ClassifyChoice(const PhysPlanPtr& plan) {
  std::function<bool(const PhysPlanPtr&, Algorithm)> contains =
      [&](const PhysPlanPtr& p, Algorithm a) {
        if (p->algorithm == a) return true;
        for (const auto& c : p->children) {
          if (contains(c, a)) return true;
        }
        return false;
      };
  if (contains(plan, Algorithm::kTAggrD)) return "Plan3";
  if (contains(plan, Algorithm::kSortM)) return "Plan2";
  if (contains(plan, Algorithm::kTAggrM)) return "Plan1";
  return "other";
}

int Main() {
  std::printf("=== Figure 8: Query 1 (temporal aggregation), 3 plans ===\n");
  std::printf("running times in seconds; scale=%.2f\n\n", Scale());

  dbms::Engine db;
  workload::UisOptions opts;

  const size_t paper_sizes[] = {8000,  17000, 27000, 36000, 46000,
                                55000, 64000, 74000, 83857};

  std::printf("%10s %10s %10s %10s   %-8s %s\n", "tuples", "plan1", "plan2",
              "plan3", "chosen", "classes/elements");

  double p1_last = 0, p2_last = 0, p3_last = 0;
  bool all_agree = true;
  std::string chosen_last;

  for (size_t raw : paper_sizes) {
    const size_t n = Scaled(raw);
    const std::string table = "POSITION_" + std::to_string(raw);
    if (!workload::LoadPositionVariant(&db, table, n, opts).ok()) {
      std::fprintf(stderr, "load failed\n");
      return 1;
    }

    Middleware mw(&db);
    Query1Plans plans = BuildPlans(&db, table);

    auto r1 = mw.Execute(plans.plan1);
    auto r2 = mw.Execute(plans.plan2);
    auto r3 = mw.Execute(plans.plan3);
    if (!r1.ok() || !r2.ok() || !r3.ok()) {
      std::fprintf(stderr, "execution failed: %s %s %s\n",
                   r1.status().ToString().c_str(),
                   r2.status().ToString().c_str(),
                   r3.status().ToString().c_str());
      return 1;
    }
    const uint64_t c1 = Checksum(r1.ValueOrDie().rows);
    all_agree = all_agree && c1 == Checksum(r2.ValueOrDie().rows) &&
                c1 == Checksum(r3.ValueOrDie().rows);

    // What does the optimizer pick?
    auto prepared = mw.Prepare(
        "TEMPORAL SELECT PosID, T1, T2, COUNT(PosID) AS CNT FROM " + table +
        " GROUP BY PosID OVER TIME ORDER BY PosID");
    std::string chosen = "ERR";
    size_t classes = 0, elements = 0;
    if (prepared.ok()) {
      chosen = ClassifyChoice(prepared.ValueOrDie().plan);
      classes = prepared.ValueOrDie().num_classes;
      elements = prepared.ValueOrDie().num_elements;
    }
    chosen_last = chosen;

    p1_last = r1.ValueOrDie().elapsed_seconds;
    p2_last = r2.ValueOrDie().elapsed_seconds;
    p3_last = r3.ValueOrDie().elapsed_seconds;
    std::printf("%10zu %10.3f %10.3f %10.3f   %-8s %zu/%zu\n", n, p1_last,
                p2_last, p3_last, chosen.c_str(), classes, elements);

    (void)db.Execute("DROP TABLE " + table);
  }

  std::printf("\nshape checks (paper: middleware aggregation up to 10x "
              "faster; plans 1-2 close):\n");
  ShapeChecks checks;
  checks.Check(all_agree, "all plans produce identical results");
  const double best_mw = std::min(p1_last, p2_last);
  checks.Check(p3_last > 3.0 * best_mw,
               "all-DBMS plan >= 3x slower at the largest size (got " +
                   std::to_string(p3_last / best_mw) + "x)");
  checks.Check(std::max(p1_last, p2_last) < 2.5 * best_mw,
               "plans 1 and 2 within 2.5x of each other");
  checks.Check(chosen_last == "Plan1" || chosen_last == "Plan2",
               "optimizer selects a middleware-aggregation plan (got " +
                   chosen_last + ")");
  return checks.failures() == 0 ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace tango

int main() { return tango::bench::Main(); }
