// Durable write path bench (EXPERIMENTS.md E15), two curves:
//
//   churn:    latency of a timeslice query over POSITION while a
//             temporal-update writer streams transactions against the same
//             table — quiet baseline vs under-churn, plus the writer's
//             standalone throughput (the write-rate axis).
//   recovery: replay time of a fresh engine over the same directory as the
//             log grows — recovery-time vs log-length, with and without a
//             checkpoint snapshot in front of the log.
//
// Emits a JSON summary (stdout, and to argv[1] if given) that
// scripts/bench_summary.sh commits as BENCH_write_churn.json.

#include <unistd.h>

#include <filesystem>

#include "common/date.h"
#include "bench_util.h"
#include "workload/writer.h"

namespace tango {
namespace bench {
namespace {

namespace fs = std::filesystem;

struct ChurnPoint {
  std::string mode;  // "quiet" | "churn"
  double query_seconds = 0;
  size_t rows = 0;
  double writer_txns_per_sec = 0;
};

struct RecoveryPoint {
  size_t txns = 0;
  bool checkpointed = false;
  uint64_t log_records = 0;
  double open_seconds = 0;
  size_t table_rows = 0;
};

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Result<size_t> CountRows(dbms::Engine* db, const std::string& table) {
  TANGO_ASSIGN_OR_RETURN(dbms::QueryResult r,
                         db->Execute("SELECT * FROM " + table));
  return r.rows.size();
}

/// Timeslice at 1996-06-01 — mid-mass, so the query reads real volume.
std::pair<double, size_t> TimesliceLatency(dbms::Connection* conn, int reps) {
  const std::string sql =
      "SELECT * FROM POSITION WHERE T1 <= " +
      std::to_string(date::FromYmd(1996, 6, 1)) + " AND T2 > " +
      std::to_string(date::FromYmd(1996, 6, 1));
  double best = 1e300;
  size_t rows = 0;
  for (int i = 0; i < reps; ++i) {
    const double t0 = Now();
    auto r = conn->Execute(sql);
    if (!r.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   r.status().ToString().c_str());
      std::abort();
    }
    best = std::min(best, Now() - t0);
    rows = r.ValueOrDie().rows.size();
  }
  return {best, rows};
}

Status LoadChurnTable(dbms::Engine* db, size_t rows) {
  TANGO_RETURN_IF_ERROR(
      db->Execute("CREATE TABLE POSITION " + workload::PositionDdlColumns())
          .status());
  return db->BulkLoad("POSITION", workload::GeneratePositionRows(rows, 42));
}

void WriteJson(std::FILE* f, const std::vector<ChurnPoint>& churn,
               const std::vector<RecoveryPoint>& recovery) {
  std::fprintf(f, "{\n  \"bench\": \"write_churn\",\n  \"scale\": %.3f,\n",
               Scale());
  std::fprintf(f, "  \"churn\": [\n");
  for (size_t i = 0; i < churn.size(); ++i) {
    const ChurnPoint& p = churn[i];
    std::fprintf(f,
                 "    {\"mode\": \"%s\", \"query_seconds\": %.6f, "
                 "\"rows\": %zu, \"writer_txns_per_sec\": %.1f}%s\n",
                 p.mode.c_str(), p.query_seconds, p.rows,
                 p.writer_txns_per_sec, i + 1 < churn.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"recovery\": [\n");
  for (size_t i = 0; i < recovery.size(); ++i) {
    const RecoveryPoint& p = recovery[i];
    std::fprintf(f,
                 "    {\"txns\": %zu, \"checkpointed\": %s, "
                 "\"log_records\": %llu, \"open_seconds\": %.6f, "
                 "\"table_rows\": %zu}%s\n",
                 p.txns, p.checkpointed ? "true" : "false",
                 static_cast<unsigned long long>(p.log_records),
                 p.open_seconds, p.table_rows,
                 i + 1 < recovery.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
}

int Main(int argc, char** argv) {
  std::printf("=== Durable write path: churn latency + recovery time ===\n");
  std::printf("scale=%.2f\n\n", Scale());

  const fs::path root =
      fs::temp_directory_path() /
      ("tango_bench_churn_" + std::to_string(::getpid()));
  fs::remove_all(root);
  ShapeChecks checks;

  // ---- churn curve ----
  std::vector<ChurnPoint> churn;
  const size_t rows = Scaled(20000);
  {
    const fs::path dir = root / "churn";
    fs::create_directories(dir);
    dbms::EngineOptions opts;
    opts.wal_dir = dir.string();
    dbms::Engine db(opts);
    checks.Check(db.Open().ok(), "churn engine opens");
    checks.Check(LoadChurnTable(&db, rows).ok(), "churn table loads");

    dbms::WireConfig wire;
    wire.simulate_delay = false;
    dbms::Connection reader(&db, wire);
    dbms::Connection writer_conn(&db, wire);

    {
      ChurnPoint p;
      p.mode = "quiet";
      std::tie(p.query_seconds, p.rows) = TimesliceLatency(&reader, 3);
      std::printf("  quiet  query %8.4fs  (%zu rows)\n", p.query_seconds,
                  p.rows);
      churn.push_back(p);
    }
    {
      // Writer standalone throughput: the write-rate axis of the sweep.
      workload::WriterOptions wopts;
      wopts.num_positions =
          std::max<int64_t>(1, static_cast<int64_t>(rows) / 20);
      workload::WriterGenerator solo(&writer_conn, wopts);
      const size_t n = Scaled(300);
      const double t0 = Now();
      checks.Check(solo.Run(n).ok(), "standalone writer runs");
      const double dt = Now() - t0;

      workload::WriterGenerator w(&writer_conn, wopts);
      w.Start();
      ChurnPoint p;
      p.mode = "churn";
      p.writer_txns_per_sec = static_cast<double>(n) / dt;
      std::tie(p.query_seconds, p.rows) = TimesliceLatency(&reader, 3);
      checks.Check(w.Stop().ok(), "churn writer stops clean");
      checks.Check(
          w.counters().txns_committed.load() > 0,
          "churn writer committed transactions while the query ran");
      std::printf("  churn  query %8.4fs  (%zu rows)  writer %.0f txn/s\n",
                  p.query_seconds, p.rows, p.writer_txns_per_sec);
      churn.push_back(p);
    }
  }

  // ---- recovery curve ----
  std::vector<RecoveryPoint> recovery;
  const size_t kTxnSteps[] = {Scaled(100), Scaled(400), Scaled(1600)};
  for (const size_t txns : kTxnSteps) {
    for (const bool checkpointed : {false, true}) {
      const fs::path dir =
          root / ("rec_" + std::to_string(txns) +
                  (checkpointed ? "_ckpt" : "_log"));
      fs::create_directories(dir);
      size_t rows_before = 0;
      {
        dbms::EngineOptions opts;
        opts.wal_dir = dir.string();
        dbms::Engine db(opts);
        checks.Check(db.Open().ok(), "recovery-curve engine opens");
        checks.Check(LoadChurnTable(&db, Scaled(4000)).ok(),
                     "recovery-curve table loads");
        dbms::WireConfig wire;
        wire.simulate_delay = false;
        dbms::Connection conn(&db, wire);
        workload::WriterOptions wopts;
        wopts.num_positions = 200;
        workload::WriterGenerator w(&conn, wopts);
        checks.Check(w.Run(txns).ok(), "recovery-curve writer runs");
        if (checkpointed) checks.Check(db.Checkpoint().ok(), "checkpoint");
        rows_before = CountRows(&db, "POSITION").ValueOrDie();
      }
      dbms::EngineOptions opts;
      opts.wal_dir = dir.string();
      dbms::Engine db(opts);
      const double t0 = Now();
      checks.Check(db.Open().ok(), "recovery replays");
      RecoveryPoint p;
      p.txns = txns;
      p.checkpointed = checkpointed;
      p.open_seconds = Now() - t0;
      p.log_records = db.recovery_stats().records_scanned;
      p.table_rows = CountRows(&db, "POSITION").ValueOrDie();
      checks.Check(p.table_rows == rows_before,
                   "recovered row count matches pre-crash count");
      std::printf(
          "  txns=%-6zu %s  open %8.4fs  (%llu records, %zu rows)\n", txns,
          checkpointed ? "ckpt" : "log ", p.open_seconds,
          static_cast<unsigned long long>(p.log_records), p.table_rows);
      recovery.push_back(p);
    }
  }

  std::printf("\n");
  WriteJson(stdout, churn, recovery);
  if (argc > 1) {
    std::FILE* f = std::fopen(argv[1], "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    WriteJson(f, churn, recovery);
    std::fclose(f);
    std::printf("wrote %s\n", argv[1]);
  }

  fs::remove_all(root);
  return checks.failures() == 0 ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace tango

int main(int argc, char** argv) { return tango::bench::Main(argc, argv); }
