// Closed-loop vectorization bench: rows/s for the tuple-at-a-time baseline
// (batch size 1, one wire frame per row — the engine's pre-vectorization
// shape) against block execution at increasing batch sizes, on two of the
// paper's workloads:
//
//   fig8_taggr:     Query 1 Plan 2 — TAGGR^M( SORT^M( T^M( SCAN^D ) ) )
//   fig10_transfer: Query 2 Plan 4's signature move — FILTER^M( T^M( SCAN^D ) ),
//                   the whole base relation crossing the wire
//   fig11_tjoin:    Query 3 Plan 2 — FILTER^M( TJOIN^M( T^M(SORT^D(SEL^D)) x2 ) )
//   fig10_transfer_wire: the same transfer plan under the calibrated link
//                   simulation (per-message latency + bandwidth pacing)
//
// The first three workloads disable wire pacing so their numbers measure
// real CPU cost (virtual calls, per-tuple copies, per-row frame headers and
// CRC), not simulated link latency. The fourth, fig10_transfer_wire, is the
// same transfer-dominated plan under the repo's calibrated wire model
// (simulate_delay on, as every figure bench runs): there each fetch pays the
// per-message link cost, which is the overhead batched transfer exists to
// amortize, so that workload carries the headline speedup. Every
// configuration must produce checksum-identical rows.
//
// Emits a JSON summary (stdout, and to argv[1] if given) that
// scripts/bench_summary.sh commits as BENCH_vectorized.json — the
// perf-trajectory baseline for the vectorized engine.

#include <cstring>

#include "common/date.h"
#include "bench_util.h"

namespace tango {
namespace bench {
namespace {

using optimizer::Algorithm;
using optimizer::PhysPlanPtr;

constexpr size_t kBatchSizes[] = {1, 4, 16, 64, 256, 1024};

struct Point {
  size_t batch_size = 0;
  double seconds = 0;
  double rows_per_sec = 0;
  double speedup = 0;  // vs batch_size 1
};

struct WorkloadResult {
  std::string name;
  size_t input_rows = 0;
  bool wire_paced = false;
  std::vector<Point> points;
  double best_speedup = 0;
  bool checksums_agree = true;
};

/// A middleware configured for a given block granularity: `batch` rows per
/// RowBlock in the execution engine AND per wire frame (row_prefetch), so
/// batch=1 degenerates to the old one-message-per-tuple hot path. `paced`
/// enables the calibrated link simulation (per-message latency + bandwidth).
std::unique_ptr<Middleware> MakeMiddleware(dbms::Engine* db, size_t batch,
                                           bool paced) {
  Middleware::Config cfg;
  cfg.batch_size = batch;
  cfg.wire.row_prefetch = batch;
  cfg.wire.simulate_delay = paced;
  return std::make_unique<Middleware>(db, cfg);
}

PhysPlanPtr BuildFig8Plan(dbms::Engine* db) {
  const Schema schema =
      db->catalog().GetTable("POSITION").ValueOrDie()->schema();
  auto scan = algebra::Scan("POSITION", schema).ValueOrDie();
  auto agg = algebra::TAggregate(scan, {"POSID"},
                                 {{AggFunc::kCount, "POSID", "CNT"}})
                 .ValueOrDie();
  const std::vector<algebra::SortSpec> arg_keys = {{"POSID", true},
                                                   {"T1", true}};
  return Node(
      Algorithm::kTAggrM, agg,
      {Node(Algorithm::kSortM, SortOpOf(scan->schema, arg_keys),
            {Node(Algorithm::kTransferM,
                  TransferOpOf(algebra::OpKind::kTransferM, scan->schema),
                  {Node(Algorithm::kScanD, scan, {})})})});
}

PhysPlanPtr BuildFig10Plan(dbms::Engine* db) {
  // Figure 10 Plan 4 moves the selection above the transfer, so the whole
  // base relation crosses the wire. That makes the plan transfer-dominated:
  // per-row frame headers, CRC, and fetch round trips are nearly the entire
  // cost at batch 1, which is exactly where block framing pays the most.
  const Schema schema =
      db->catalog().GetTable("POSITION").ValueOrDie()->schema();
  auto scan = algebra::Scan("POSITION", schema).ValueOrDie();
  auto pay_pred = Expr::Binary(BinaryOp::kGt, Expr::ColumnRef("PAYRATE"),
                               Expr::Int(10));
  auto sel = algebra::Select(scan, pay_pred).ValueOrDie();
  return Node(Algorithm::kFilterM, sel,
              {Node(Algorithm::kTransferM,
                    TransferOpOf(algebra::OpKind::kTransferM, scan->schema),
                    {Node(Algorithm::kScanD, scan, {})})});
}

PhysPlanPtr BuildFig11Plan(dbms::Engine* db, int64_t max_start) {
  const Schema schema =
      db->catalog().GetTable("POSITION").ValueOrDie()->schema();
  auto scan_a = algebra::Scan("POSITION", schema, "A").ValueOrDie();
  auto scan_b = algebra::Scan("POSITION", schema, "B").ValueOrDie();
  auto start_pred = [&](const std::string& qual) {
    return Expr::Binary(BinaryOp::kLt, Expr::ColumnRef(qual + ".T1"),
                        Expr::Int(max_start));
  };
  auto sel_a = algebra::Select(scan_a, start_pred("A")).ValueOrDie();
  auto sel_b = algebra::Select(scan_b, start_pred("B")).ValueOrDie();
  auto tjoin =
      algebra::TJoin(sel_a, sel_b, {{"A.POSID", "B.POSID"}}).ValueOrDie();
  auto pair_pred = Expr::Binary(BinaryOp::kLt, Expr::ColumnRef("A.EMPNAME"),
                                Expr::ColumnRef("B.EMPNAME"));
  auto pairs = algebra::Select(tjoin, pair_pred).ValueOrDie();

  const std::vector<algebra::SortSpec> arg_keys = {{"POSID", true}};
  auto arg = [&](const algebra::OpPtr& sel, const algebra::OpPtr& scan) {
    return Node(Algorithm::kTransferM,
                TransferOpOf(algebra::OpKind::kTransferM, sel->schema),
                {Node(Algorithm::kSortD, SortOpOf(sel->schema, arg_keys),
                      {Node(Algorithm::kSelectD, sel,
                            {Node(Algorithm::kScanD, scan, {})})})});
  };
  return Node(Algorithm::kFilterM, pairs,
              {Node(Algorithm::kTJoinM, tjoin,
                    {arg(sel_a, scan_a), arg(sel_b, scan_b)})});
}

WorkloadResult RunWorkload(
    dbms::Engine* db, const std::string& name, size_t input_rows, bool paced,
    const std::function<PhysPlanPtr(dbms::Engine*)>& build) {
  WorkloadResult out;
  out.name = name;
  out.input_rows = input_rows;
  out.wire_paced = paced;

  uint64_t base_checksum = 0;
  double base_rps = 0;
  for (const size_t batch : kBatchSizes) {
    auto mw = MakeMiddleware(db, batch, paced);
    const PhysPlanPtr plan = build(db);
    // Warm once (first run pays catalog/stat lookups), then best-of-3.
    // Paced runs are deterministic (the spin-paced link dominates), so one
    // timed run suffices and keeps the batch=1 point from taking minutes.
    auto warm = mw->Execute(plan);
    if (!warm.ok()) {
      std::fprintf(stderr, "%s failed at batch %zu: %s\n", name.c_str(),
                   batch, warm.status().ToString().c_str());
      std::abort();
    }
    const uint64_t sum = Checksum(warm.ValueOrDie().rows);
    if (batch == kBatchSizes[0]) {
      base_checksum = sum;
    } else if (sum != base_checksum) {
      out.checksums_agree = false;
    }
    const auto [secs, rows] = RunBest(mw.get(), plan, paced ? 1 : 3);
    (void)rows;

    Point p;
    p.batch_size = batch;
    p.seconds = secs;
    p.rows_per_sec = secs > 0 ? static_cast<double>(input_rows) / secs : 0;
    if (batch == kBatchSizes[0]) base_rps = p.rows_per_sec;
    p.speedup = base_rps > 0 ? p.rows_per_sec / base_rps : 0;
    out.best_speedup = std::max(out.best_speedup, p.speedup);
    out.points.push_back(p);
    std::printf("  %-12s batch=%-5zu %8.3fs  %12.0f rows/s  %5.2fx\n",
                name.c_str(), batch, p.seconds, p.rows_per_sec, p.speedup);
  }
  return out;
}

void WriteJson(std::FILE* f, const std::vector<WorkloadResult>& results) {
  std::fprintf(f, "{\n  \"bench\": \"vectorized\",\n  \"scale\": %.3f,\n",
               Scale());
  std::fprintf(f, "  \"workloads\": [\n");
  for (size_t w = 0; w < results.size(); ++w) {
    const WorkloadResult& r = results[w];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"input_rows\": %zu, "
                 "\"wire_paced\": %s, \"checksums_agree\": %s,\n"
                 "     \"points\": [\n",
                 r.name.c_str(), r.input_rows,
                 r.wire_paced ? "true" : "false",
                 r.checksums_agree ? "true" : "false");
    for (size_t i = 0; i < r.points.size(); ++i) {
      const Point& p = r.points[i];
      std::fprintf(f,
                   "      {\"batch_size\": %zu, \"seconds\": %.6f, "
                   "\"rows_per_sec\": %.0f, \"speedup\": %.3f}%s\n",
                   p.batch_size, p.seconds, p.rows_per_sec, p.speedup,
                   i + 1 < r.points.size() ? "," : "");
    }
    std::fprintf(f, "     ],\n     \"best_speedup\": %.3f}%s\n",
                 r.best_speedup, w + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
}

int Main(int argc, char** argv) {
  std::printf("=== Vectorized execution: tuple-at-a-time vs block ===\n");
  std::printf("rows/s per batch size; wire pacing off; scale=%.2f\n\n",
              Scale());

  dbms::Engine db;
  workload::UisOptions opts;
  opts.position_rows = Scaled(opts.position_rows);
  opts.employee_rows = 1;  // EMPLOYEE unused by either workload
  if (!workload::LoadUis(&db, opts).ok()) {
    std::fprintf(stderr, "load failed\n");
    return 1;
  }
  const size_t n = opts.position_rows;

  std::vector<WorkloadResult> results;
  results.push_back(
      RunWorkload(&db, "fig8_taggr", n, /*paced=*/false, BuildFig8Plan));
  results.push_back(RunWorkload(&db, "fig10_transfer", n, /*paced=*/false,
                                BuildFig10Plan));
  // Query 3 at max start 1993: a mid-selectivity self-join so both the
  // transfer path and the merge join see real row volume (the join reads
  // two filtered POSITION streams).
  const int64_t max_start = date::Jan1(1993);
  results.push_back(RunWorkload(
      &db, "fig11_tjoin", 2 * n, /*paced=*/false,
      [max_start](dbms::Engine* e) { return BuildFig11Plan(e, max_start); }));
  // The same transfer-dominated plan under the calibrated link model every
  // figure bench uses: one message per fetch costs per_batch latency plus
  // bandwidth, so amortizing messages over blocks is the whole game — this
  // is the deployment-shaped number and the headline speedup.
  results.push_back(RunWorkload(&db, "fig10_transfer_wire", n, /*paced=*/true,
                                BuildFig10Plan));

  std::printf("\n");
  WriteJson(stdout, results);
  if (argc > 1) {
    std::FILE* f = std::fopen(argv[1], "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    WriteJson(f, results);
    std::fclose(f);
    std::printf("wrote %s\n", argv[1]);
  }

  ShapeChecks checks;
  for (const WorkloadResult& r : results) {
    checks.Check(r.checksums_agree,
                 r.name + ": identical results at every batch size");
  }
  double best = 0;
  for (const WorkloadResult& r : results) {
    best = std::max(best, r.best_speedup);
  }
  checks.Check(best >= 2.0, "block execution >= 2x tuple-at-a-time on at "
                            "least one workload (got " +
                                std::to_string(best) + "x)");
  return checks.failures() == 0 ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace tango

int main(int argc, char** argv) { return tango::bench::Main(argc, argv); }
