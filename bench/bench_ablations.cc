// E9: ablations of the design choices DESIGN.md calls out.
//
//  A. Wire bandwidth: the middleware-vs-DBMS split is a transfer-cost
//     tradeoff; sweeping the simulated link shows how the Query-1 plan gap
//     and the optimizer's decision respond (the paper's Oracle/JDBC link is
//     one point on this curve).
//  B. Semantic temporal selectivity (§3.3) on/off: the cardinality the
//     optimizer believes for a windowed scan, with the naive estimator's
//     factor-of-N error surfacing directly in the estimates.
//  C. Argument reduction (heuristic group 4): Query-1-style aggregation
//     with and without a window selection pushed below ξ^T — the measured
//     effect of the rule that distinguishes Query 2's Plans 1 and 5.

#include "common/date.h"
#include "bench_util.h"

namespace tango {
namespace bench {
namespace {

using optimizer::Algorithm;
using optimizer::PhysPlanPtr;

bool Has(const PhysPlanPtr& plan, Algorithm alg) {
  if (plan->algorithm == alg) return true;
  for (const auto& c : plan->children) {
    if (Has(c, alg)) return true;
  }
  return false;
}

int Main() {
  std::printf("=== E9: design-choice ablations ===\n\n");
  ShapeChecks checks;

  // ---------------- A: wire bandwidth ----------------
  std::printf("A. wire bandwidth vs Query-1 plans (POSITION = %zu rows)\n",
              Scaled(40000));
  std::printf("%12s %12s %12s %10s\n", "MB/s", "TAGGR^M (s)", "TAGGR^D (s)",
              "optimizer");
  double slow_gap = 0, fast_gap = 0;
  for (double mbps : {2.0, 25.0, 400.0}) {
    dbms::Engine db;
    workload::UisOptions opts;
    opts.position_rows = Scaled(40000);
    opts.employee_rows = 1;
    if (!workload::LoadUis(&db, opts).ok()) return 1;

    Middleware::Config config;
    config.wire.bytes_per_second = mbps * 1e6;
    Middleware mw(&db, config);
    cost::Calibrator calibrator(&mw.connection());
    if (!calibrator.Calibrate(&mw.cost_model()).ok()) return 1;

    const Schema schema =
        db.catalog().GetTable("POSITION").ValueOrDie()->schema();
    auto scan = algebra::Scan("POSITION", schema).ValueOrDie();
    auto agg = algebra::TAggregate(scan, {"POSID"},
                                   {{AggFunc::kCount, "POSID", "CNT"}})
                   .ValueOrDie();
    const std::vector<algebra::SortSpec> keys = {{"POSID", true}, {"T1", true}};
    auto scan_d = Node(Algorithm::kScanD, scan, {});
    auto plan_m = Node(
        Algorithm::kTAggrM, agg,
        {Node(Algorithm::kTransferM,
              TransferOpOf(algebra::OpKind::kTransferM, scan->schema),
              {Node(Algorithm::kSortD, SortOpOf(scan->schema, keys),
                    {scan_d})})});
    auto plan_d = Node(
        Algorithm::kTransferM,
        TransferOpOf(algebra::OpKind::kTransferM, agg->schema),
        {Node(Algorithm::kSortD, SortOpOf(agg->schema, keys),
              {Node(Algorithm::kTAggrD, agg, {scan_d})})});

    const auto [tm, rows_m] = Run(&mw, plan_m);
    const auto [td, rows_d] = Run(&mw, plan_d);
    auto sorted = algebra::Sort(agg, {{"POSID", true}}).ValueOrDie();
    auto prepared =
        mw.PrepareLogical(algebra::TransferM(sorted).ValueOrDie());
    const char* pick =
        prepared.ok() && Has(prepared.ValueOrDie().plan, Algorithm::kTAggrM)
            ? "TAGGR^M"
            : "TAGGR^D";
    std::printf("%12.0f %12.3f %12.3f %10s\n", mbps, tm, td, pick);
    if (mbps < 3) slow_gap = td / tm;
    if (mbps > 100) fast_gap = td / tm;
    (void)rows_m;
    (void)rows_d;
  }
  checks.Check(fast_gap > slow_gap,
               "a faster wire widens the middleware's advantage (" +
                   std::to_string(slow_gap) + "x -> " +
                   std::to_string(fast_gap) + "x)");
  checks.Check(slow_gap > 1.0,
               "middleware aggregation still wins on the slow wire");

  // ---------------- B: semantic temporal selectivity ----------------
  std::printf("\nB. estimated cardinality of a windowed scan, semantic vs "
              "naive estimation\n");
  {
    // The §3.3 relation: short (7-day) periods are where independent
    // per-conjunct estimation falls apart.
    dbms::Engine db;
    if (!workload::LoadUniformR(&db, "R", Scaled(100000)).ok()) return 1;

    auto estimate = [&](bool semantic) {
      Middleware::Config config;
      config.semantic_temporal_selectivity = semantic;
      Middleware mw(&db, config);
      const Schema schema = db.catalog().GetTable("R").ValueOrDie()->schema();
      auto scan = algebra::Scan("R", schema).ValueOrDie();
      auto pred = Expr::And(
          Expr::Binary(BinaryOp::kLt, Expr::ColumnRef("T1"),
                       Expr::Int(date::FromYmd(1997, 2, 8))),
          Expr::Binary(BinaryOp::kGt, Expr::ColumnRef("T2"),
                       Expr::Int(date::FromYmd(1997, 2, 1))));
      auto sel = algebra::Select(scan, pred).ValueOrDie();
      auto prepared =
          mw.PrepareLogical(algebra::TransferM(sel).ValueOrDie());
      return prepared.ok() ? prepared.ValueOrDie().plan->est_cardinality : -1.0;
    };
    auto actual = db.Execute(
        "SELECT COUNT(*) AS C FROM R WHERE T1 < " +
        std::to_string(date::FromYmd(1997, 2, 8)) + " AND T2 > " +
        std::to_string(date::FromYmd(1997, 2, 1)));
    const double act =
        static_cast<double>(actual.ValueOrDie().rows[0][0].AsInt());
    const double sem = estimate(true);
    const double naive = estimate(false);
    std::printf("   actual %.0f, semantic estimate %.0f (%.2fx), naive "
                "estimate %.0f (%.2fx)\n",
                act, sem, sem / act, naive, naive / act);
    checks.Check(sem / act < 2.0 && sem / act > 0.5,
                 "semantic estimate within 2x of the actual");
    checks.Check(naive / act > 10.0,
                 "naive estimate grossly overestimates (got " +
                     std::to_string(naive / act) + "x)");
  }

  // ---------------- C: argument reduction below ξ^T ----------------
  std::printf("\nC. window selection pushed below the temporal aggregation "
              "(heuristic group 4)\n");
  {
    dbms::Engine db;
    workload::UisOptions opts;
    opts.position_rows = Scaled(40000);
    opts.employee_rows = 1;
    if (!workload::LoadUis(&db, opts).ok()) return 1;
    Middleware mw(&db);

    const Schema schema =
        db.catalog().GetTable("POSITION").ValueOrDie()->schema();
    auto scan = algebra::Scan("POSITION", schema).ValueOrDie();
    auto window = Expr::And(
        Expr::Binary(BinaryOp::kLt, Expr::ColumnRef("T1"),
                     Expr::Int(date::Jan1(1994))),
        Expr::Binary(BinaryOp::kGt, Expr::ColumnRef("T2"),
                     Expr::Int(date::Jan1(1990))));
    auto sel = algebra::Select(scan, window).ValueOrDie();
    const std::vector<algebra::AggItem> aggs = {
        {AggFunc::kCount, "POSID", "CNT"}};
    auto agg_reduced = algebra::TAggregate(sel, {"POSID"}, aggs).ValueOrDie();
    auto agg_full = algebra::TAggregate(scan, {"POSID"}, aggs).ValueOrDie();
    auto top_sel = algebra::Select(agg_full, window).ValueOrDie();

    const std::vector<algebra::SortSpec> keys = {{"POSID", true}, {"T1", true}};
    auto scan_d = Node(Algorithm::kScanD, scan, {});
    auto reduced_plan = Node(
        Algorithm::kFilterM, algebra::Select(agg_reduced, window).ValueOrDie(),
        {Node(Algorithm::kTAggrM, agg_reduced,
              {Node(Algorithm::kTransferM,
                    TransferOpOf(algebra::OpKind::kTransferM, sel->schema),
                    {Node(Algorithm::kSortD, SortOpOf(sel->schema, keys),
                          {Node(Algorithm::kSelectD, sel, {scan_d})})})})});
    auto full_plan = Node(
        Algorithm::kFilterM, top_sel,
        {Node(Algorithm::kTAggrM, agg_full,
              {Node(Algorithm::kTransferM,
                    TransferOpOf(algebra::OpKind::kTransferM, scan->schema),
                    {Node(Algorithm::kSortD, SortOpOf(scan->schema, keys),
                          {scan_d})})})});
    const auto [t_reduced, rows_r] = Run(&mw, reduced_plan);
    const auto [t_full, rows_f] = Run(&mw, full_plan);
    std::printf("   reduced argument: %.3fs (%zu rows); full argument: "
                "%.3fs (%zu rows)\n",
                t_reduced, rows_r, t_full, rows_f);
    checks.Check(t_reduced < t_full,
                 "pushing the window below the aggregation pays off (" +
                     std::to_string(t_full / t_reduced) + "x)");
  }

  std::printf("\n");
  return checks.failures() == 0 ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace tango

int main() { return tango::bench::Main(); }
