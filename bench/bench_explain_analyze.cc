// EXPLAIN ANALYZE demonstration: Query 1 (Figure 8's temporal aggregation)
// on the POSITION variant nearest the Plan-1/Plan-2 crossover region
// (~27k tuples), executed through Middleware::ExplainAnalyze so the printed
// tree shows, per operator, estimated vs actual rows, Q-error, and the
// estimated cost next to the measured self/inclusive/worker times.

#include "bench_util.h"

#include "obs/explain.h"

namespace tango {
namespace bench {
namespace {

int Main() {
  std::printf("=== EXPLAIN ANALYZE: Query 1 at the Figure-8 crossover ===\n");
  std::printf("scale=%.2f\n\n", Scale());

  dbms::Engine db;
  workload::UisOptions opts;
  const size_t n = Scaled(27000);
  const std::string table = "POSITION_27000";
  if (!workload::LoadPositionVariant(&db, table, n, opts).ok()) {
    std::fprintf(stderr, "load failed\n");
    return 1;
  }

  Middleware mw(&db);
  auto prepared = mw.Prepare(
      "TEMPORAL SELECT PosID, T1, T2, COUNT(PosID) AS CNT FROM " + table +
      " GROUP BY PosID OVER TIME ORDER BY PosID");
  if (!prepared.ok()) {
    std::fprintf(stderr, "prepare failed: %s\n",
                 prepared.status().ToString().c_str());
    return 1;
  }

  auto rendered = mw.ExplainAnalyze(prepared.ValueOrDie());
  if (!rendered.ok()) {
    std::fprintf(stderr, "explain analyze failed: %s\n",
                 rendered.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", rendered.ValueOrDie().c_str());

  // The data form drives the shape checks: estimates within a sane factor
  // of the actuals, and the measured tree accounts for the elapsed time.
  auto report = mw.Analyze(prepared.ValueOrDie());
  if (!report.ok()) {
    std::fprintf(stderr, "analyze failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  const obs::AnalyzeReport& r = report.ValueOrDie();
  double worst_q = 1.0;
  for (const obs::OpObservation& op : r.ops) {
    if (op.label.find("TRANSFER^D") != std::string::npos) continue;
    worst_q = std::max(
        worst_q, obs::QError(op.est_rows, static_cast<double>(op.act_rows)));
  }

  ShapeChecks checks;
  checks.Check(r.result_rows > 0, "query produced rows");
  checks.Check(worst_q <= 16.0, "worst per-operator Q-error <= 16 (got " +
                                    std::to_string(worst_q) + ")");
  checks.Check(
      r.ops[r.root].inclusive_seconds <= r.elapsed_seconds,
      "root inclusive time within the query's elapsed time");
  return checks.failures() == 0 ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace tango

int main() { return tango::bench::Main(); }
