// Parallel middleware execution: serial-vs-parallel running times for
// Query 1's middleware pipeline — TAGGR^M( SORT^M( T^M( scan ) ) ), Plan 2
// of Figure 7 — at DOP 1, 2, and 4 on the full-scale POSITION relation.
//
// At DOP > 1 the compiler swaps in the parallel operators: the T^M drain
// runs on a prefetch thread, SORT^M generates sorted runs concurrently, and
// the cost model discounts the parallelized CPU terms. Results must be
// identical at every DOP (the sort is bit-identical by construction).
//
// Speedup expectations depend on the hardware this runs on: with a single
// core (common in CI containers) the parallel variants can only tie the
// serial ones (minus pool overhead), so the speedup check is gated on
// std::thread::hardware_concurrency().

#include <thread>

#include "bench_util.h"

namespace tango {
namespace bench {
namespace {

using optimizer::Algorithm;
using optimizer::PhysPlanPtr;

PhysPlanPtr BuildPlan2(dbms::Engine* db, const std::string& table) {
  const Schema schema = db->catalog().GetTable(table).ValueOrDie()->schema();
  algebra::OpPtr scan = algebra::Scan(table, schema).ValueOrDie();
  algebra::OpPtr agg =
      algebra::TAggregate(scan, {"POSID"}, {{AggFunc::kCount, "POSID", "CNT"}})
          .ValueOrDie();
  const std::vector<algebra::SortSpec> keys = {{"POSID", true}, {"T1", true}};
  return Node(
      Algorithm::kTAggrM, agg,
      {Node(Algorithm::kSortM, SortOpOf(scan->schema, keys),
            {Node(Algorithm::kTransferM,
                  TransferOpOf(algebra::OpKind::kTransferM, scan->schema),
                  {Node(Algorithm::kScanD, scan, {})})})});
}

int Main() {
  std::printf("=== Parallel middleware execution: Query 1 Plan 2 at DOP "
              "1/2/4 ===\n");
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("hardware threads: %u; scale=%.2f\n\n", hw, Scale());

  dbms::Engine db;
  workload::UisOptions opts;
  const size_t n = Scaled(83857);
  const std::string table = "POSITION_PAR";
  if (!workload::LoadPositionVariant(&db, table, n, opts).ok()) {
    std::fprintf(stderr, "load failed\n");
    return 1;
  }

  const size_t dops[] = {1, 2, 4};
  double times[3] = {0, 0, 0};
  uint64_t checksums[3] = {0, 0, 0};
  size_t rows[3] = {0, 0, 0};

  std::printf("%6s %12s %10s %10s\n", "dop", "time(s)", "rows", "speedup");
  for (int i = 0; i < 3; ++i) {
    Middleware::Config cfg;
    cfg.dop = dops[i];
    // A modest sort budget makes run generation the dominant CPU cost, the
    // term the parallel sort attacks.
    cfg.sort_memory_budget_bytes = 4 << 20;
    Middleware mw(&db, cfg);
    PhysPlanPtr plan = BuildPlan2(&db, table);

    // Warm-up run (populates the DBMS caches, starts the pool), then
    // best-of-2 timed runs.
    auto warm = mw.Execute(plan);
    if (!warm.ok()) {
      std::fprintf(stderr, "execution failed at dop=%zu: %s\n", dops[i],
                   warm.status().ToString().c_str());
      return 1;
    }
    checksums[i] = Checksum(warm.ValueOrDie().rows);
    rows[i] = warm.ValueOrDie().rows.size();
    const auto [t, nrows] = RunBest(&mw, plan);
    (void)nrows;
    times[i] = t;
    std::printf("%6zu %12.3f %10zu %9.2fx\n", dops[i], times[i], rows[i],
                times[0] / times[i]);
  }

  std::printf("\nshape checks:\n");
  ShapeChecks checks;
  checks.Check(checksums[0] == checksums[1] && checksums[0] == checksums[2],
               "identical results at every DOP");
  checks.Check(rows[0] > 0, "pipeline produced rows");
  if (hw >= 2) {
    // Real parallel hardware: DOP 4 must beat serial by a clear margin.
    const double speedup = times[0] / times[2];
    checks.Check(speedup >= 1.5,
                 "dop=4 at least 1.5x faster than serial (got " +
                     std::to_string(speedup) + "x)");
  } else {
    // Single-core host: no physical concurrency to win — require only that
    // the parallel engine is not catastrophically slower, and say so.
    std::printf("  [SKIP] speedup check: only %u hardware thread(s); "
                "parallelism cannot pay off on this host\n", hw);
    checks.Check(times[2] < 3.0 * times[0],
                 "dop=4 within 3x of serial on a single-core host");
  }
  return checks.failures() == 0 ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace tango

int main() { return tango::bench::Main(); }
