// E7: the Cost Estimator's calibration (Du et al.'s mechanism, §5.1) and
// the performance-feedback adaptation loop (the "Adaptable" in the title:
// "the middleware uses performance feedback from the DBMS to adapt its
// partitioning of subsequent queries").
//
// Part 1 calibrates the cost factors from probe queries and checks the
// asymmetries the paper's experiments rely on (DBMS temporal aggregation
// far more expensive per byte than the middleware's).
//
// Part 2 starts a middleware whose cost model is deliberately wrong — it
// believes the DBMS evaluates temporal aggregation almost for free — lets
// it run the Query-1 aggregation repeatedly with adaptation on, and shows
// the partitioning decision flip from the all-DBMS plan to the middleware
// plan as the measured DBMS fragment times feed back into the factors
// (the abstract: "uses performance feedback from the DBMS to adapt its
// partitioning of subsequent queries"; the division of a fragment's running
// time among its DBMS algorithms is the paper's §7 challenge, implemented
// here by proportional attribution).

#include "bench_util.h"

namespace tango {
namespace bench {
namespace {

using optimizer::Algorithm;

bool UsesMiddlewareAggregation(const optimizer::PhysPlanPtr& plan) {
  if (plan->algorithm == Algorithm::kTAggrM) return true;
  for (const auto& c : plan->children) {
    if (UsesMiddlewareAggregation(c)) return true;
  }
  return false;
}

int Main() {
  std::printf("=== E7: cost-factor calibration and feedback adaptation ===\n\n");
  ShapeChecks checks;

  dbms::Engine db;
  workload::UisOptions opts;
  opts.position_rows = Scaled(30000);
  opts.employee_rows = 1;
  if (!workload::LoadUis(&db, opts).ok()) {
    std::fprintf(stderr, "load failed\n");
    return 1;
  }

  // ---- Part 1: calibration. ----
  Middleware mw(&db);
  cost::Calibrator calibrator(&mw.connection());
  auto report = calibrator.Calibrate(&mw.cost_model());
  if (!report.ok()) {
    std::fprintf(stderr, "calibration failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n\n", report.ValueOrDie().ToString().c_str());
  const cost::CostFactors& f = mw.cost_model().factors();
  checks.Check(f.taggd1 + f.taggd2 > 2 * (f.taggm1 + f.taggm2),
               "calibrated: DBMS temporal aggregation >2x the middleware's "
               "per byte");
  checks.Check(f.tm > 0 && f.td > 0, "calibrated transfer factors positive");
  checks.Check(f.sortm > 0 && f.sortd > 0, "calibrated sort factors positive");

  // ---- Part 2: adaptation flips the partitioning decision. ----
  Middleware::Config cfg;
  cfg.adapt = true;
  cfg.feedback_alpha = 0.5;
  Middleware adaptive(&db, cfg);
  // Deliberately wrong beliefs: DBMS temporal aggregation "nearly free".
  adaptive.cost_model().factors() = f;
  adaptive.cost_model().factors().taggd1 = 0.0005;
  adaptive.cost_model().factors().taggd2 = 0.0005;

  const std::string query =
      "TEMPORAL SELECT PosID, T1, T2, COUNT(PosID) AS CNT FROM POSITION "
      "GROUP BY PosID OVER TIME ORDER BY PosID";

  std::printf("%4s %-10s %10s %12s %12s\n", "run", "chosen", "seconds",
              "p_taggd1", "p_taggd2");
  bool first_is_dbms = false;
  bool flipped = false;
  for (int run = 1; run <= 6; ++run) {
    auto prepared = adaptive.Prepare(query);
    if (!prepared.ok()) {
      std::fprintf(stderr, "prepare failed: %s\n",
                   prepared.status().ToString().c_str());
      return 1;
    }
    const bool mw_agg = UsesMiddlewareAggregation(prepared.ValueOrDie().plan);
    if (run == 1) first_is_dbms = !mw_agg;
    if (mw_agg) flipped = true;
    auto executed = adaptive.Execute(prepared.ValueOrDie().plan);
    if (!executed.ok()) {
      std::fprintf(stderr, "execute failed: %s\n",
                   executed.status().ToString().c_str());
      return 1;
    }
    std::printf("%4d %-10s %10.3f %12.5f %12.5f\n", run,
                mw_agg ? "TAGGR^M" : "TAGGR^D",
                executed.ValueOrDie().elapsed_seconds,
                adaptive.cost_model().factors().taggd1,
                adaptive.cost_model().factors().taggd2);
  }

  std::printf("\nshape checks:\n");
  checks.Check(first_is_dbms,
               "with the wrong factors the first run stays in the DBMS");
  checks.Check(flipped,
               "feedback moves later runs to the middleware aggregation");
  return checks.failures() == 0 ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace tango

int main() { return tango::bench::Main(); }
