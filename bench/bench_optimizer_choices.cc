// E6: optimizer quality, as §5.1 frames it — "evaluate the robustness of
// the middleware optimizer, i.e., does it return plans that fall within,
// say, 20% of the best plans" — plus the per-query equivalence class /
// element counts the paper reports (Query 1: 12 classes / 29 elements,
// Query 2: 142/452, Query 3: 104/301, Query 4: 13/30; our rule realization
// differs, so the absolute counts do too).
//
// For Queries 1 and 3 the harness executes the paper's candidate plans and
// the optimizer's choice at several parameter points and reports the ratio
// of the chosen plan's time to the best candidate's. (Queries 2 and 4
// validate their choices inside their own figure benches.)

#include "common/date.h"
#include "bench_util.h"

namespace tango {
namespace bench {
namespace {

using optimizer::Algorithm;
using optimizer::PhysPlanPtr;

// ---- Query 1 candidates (see bench_query1_fig8.cc). ----
struct Candidates {
  std::vector<PhysPlanPtr> plans;
  algebra::OpPtr initial;
};

Candidates Query1(dbms::Engine* db, const std::string& table) {
  Candidates out;
  const Schema schema = db->catalog().GetTable(table).ValueOrDie()->schema();
  auto scan = algebra::Scan(table, schema).ValueOrDie();
  auto agg = algebra::TAggregate(scan, {"POSID"},
                                 {{AggFunc::kCount, "POSID", "CNT"}})
                 .ValueOrDie();
  auto sorted = algebra::Sort(agg, {{"POSID", true}}).ValueOrDie();
  out.initial = algebra::TransferM(sorted).ValueOrDie();
  const std::vector<algebra::SortSpec> keys = {{"POSID", true}, {"T1", true}};
  auto scan_d = Node(Algorithm::kScanD, scan, {});
  out.plans.push_back(Node(
      Algorithm::kTAggrM, agg,
      {Node(Algorithm::kTransferM,
            TransferOpOf(algebra::OpKind::kTransferM, scan->schema),
            {Node(Algorithm::kSortD, SortOpOf(scan->schema, keys), {scan_d})})}));
  out.plans.push_back(Node(
      Algorithm::kTAggrM, agg,
      {Node(Algorithm::kSortM, SortOpOf(scan->schema, keys),
            {Node(Algorithm::kTransferM,
                  TransferOpOf(algebra::OpKind::kTransferM, scan->schema),
                  {scan_d})})}));
  out.plans.push_back(Node(
      Algorithm::kTransferM,
      TransferOpOf(algebra::OpKind::kTransferM, agg->schema),
      {Node(Algorithm::kSortD, SortOpOf(agg->schema, keys),
            {Node(Algorithm::kTAggrD, agg, {scan_d})})}));
  return out;
}

// ---- Query 3 candidates (see bench_query3_fig11a.cc). ----
Candidates Query3(dbms::Engine* db, int64_t max_start) {
  Candidates out;
  const Schema schema =
      db->catalog().GetTable("POSITION").ValueOrDie()->schema();
  auto scan_a = algebra::Scan("POSITION", schema, "A").ValueOrDie();
  auto scan_b = algebra::Scan("POSITION", schema, "B").ValueOrDie();
  auto pred = [&](const std::string& q) {
    return Expr::Binary(BinaryOp::kLt, Expr::ColumnRef(q + ".T1"),
                        Expr::Int(max_start));
  };
  auto sel_a = algebra::Select(scan_a, pred("A")).ValueOrDie();
  auto sel_b = algebra::Select(scan_b, pred("B")).ValueOrDie();
  auto tjoin =
      algebra::TJoin(sel_a, sel_b, {{"A.POSID", "B.POSID"}}).ValueOrDie();
  auto pairs = algebra::Select(tjoin, Expr::Binary(BinaryOp::kLt,
                                                   Expr::ColumnRef("A.EMPNAME"),
                                                   Expr::ColumnRef("B.EMPNAME")))
                   .ValueOrDie();
  auto sorted = algebra::Sort(pairs, {{"A.POSID", true}}).ValueOrDie();
  out.initial = algebra::TransferM(sorted).ValueOrDie();

  auto sel_a_d = Node(Algorithm::kSelectD, sel_a,
                      {Node(Algorithm::kScanD, scan_a, {})});
  auto sel_b_d = Node(Algorithm::kSelectD, sel_b,
                      {Node(Algorithm::kScanD, scan_b, {})});
  out.plans.push_back(Node(
      Algorithm::kTransferM,
      TransferOpOf(algebra::OpKind::kTransferM, pairs->schema),
      {Node(Algorithm::kSortD, SortOpOf(pairs->schema, {{"POSID", true}}),
            {Node(Algorithm::kSelectD, pairs,
                  {Node(Algorithm::kTJoinD, tjoin, {sel_a_d, sel_b_d})})})}));
  auto arg = [&](const algebra::OpPtr& sel, PhysPlanPtr sel_d) {
    return Node(Algorithm::kTransferM,
                TransferOpOf(algebra::OpKind::kTransferM, sel->schema),
                {Node(Algorithm::kSortD,
                      SortOpOf(sel->schema, {{"POSID", true}}), {sel_d})});
  };
  out.plans.push_back(
      Node(Algorithm::kFilterM, pairs,
           {Node(Algorithm::kTJoinM, tjoin,
                 {arg(sel_a, sel_a_d), arg(sel_b, sel_b_d)})}));
  return out;
}

struct Robustness {
  int points = 0;
  int within_20pct = 0;
  double worst_ratio = 0;
};

void Evaluate(Middleware* mw, const Candidates& c, const std::string& label,
              Robustness* rob) {
  double best = 1e100;
  for (size_t i = 0; i < c.plans.size(); ++i) {
    best = std::min(best, RunBest(mw, c.plans[i]).first);
  }
  auto prepared = mw->PrepareLogical(c.initial);
  if (!prepared.ok()) {
    std::fprintf(stderr, "prepare failed: %s\n",
                 prepared.status().ToString().c_str());
    std::abort();
  }
  const double t = RunBest(mw, prepared.ValueOrDie().plan).first;
  const double ratio = t / best;
  rob->points += 1;
  if (ratio <= 1.25) rob->within_20pct += 1;
  rob->worst_ratio = std::max(rob->worst_ratio, ratio);
  std::printf("%-24s best candidate %7.3fs, chosen %7.3fs  (%.2fx)\n",
              label.c_str(), best, t, ratio);
}

int Main() {
  std::printf("=== E6: optimizer robustness and equivalence-class counts ===\n\n");

  dbms::Engine db;
  workload::UisOptions opts;
  opts.position_rows = Scaled(opts.position_rows);
  opts.employee_rows = Scaled(opts.employee_rows);
  if (!workload::LoadUis(&db, opts).ok()) {
    std::fprintf(stderr, "load failed\n");
    return 1;
  }
  Middleware mw(&db);
  CalibrateOrDie(&mw);

  // ---- Equivalence class / element counts per query. The "physical"
  // column counts the (class, site, order) combinations the top-down search
  // costed: the transfer/sort placement variants the paper's memo-level
  // rules T1-T8 enumerate live there in this implementation. ----
  std::printf("query                      classes  elements  physical   "
              "(paper classes/elements: Q1 12/29, Q2 142/452, Q3 104/301, "
              "Q4 13/30)\n");
  size_t q1_classes = 0;
  {
    auto c = Query1(&db, "POSITION");
    auto p = mw.PrepareLogical(c.initial).ValueOrDie();
    q1_classes = p.num_classes;
    std::printf("  Query 1 (aggregation)  %7zu  %8zu  %8zu\n", p.num_classes,
                p.num_elements, p.num_physical);
  }
  {
    // Query 2's shape: selections over a temporal join of an aggregation.
    const Schema schema =
        db.catalog().GetTable("POSITION").ValueOrDie()->schema();
    auto scan_a = algebra::Scan("POSITION", schema, "A").ValueOrDie();
    auto scan_b = algebra::Scan("POSITION", schema, "B").ValueOrDie();
    auto agg = algebra::TAggregate(scan_a, {"A.POSID"},
                                   {{AggFunc::kCount, "A.POSID", "CNT"}})
                   .ValueOrDie();
    auto tj = algebra::TJoin(agg, scan_b, {{"POSID", "B.POSID"}}).ValueOrDie();
    auto pred = Expr::AndAll(
        {Expr::Binary(BinaryOp::kGt, Expr::ColumnRef("PAYRATE"),
                      Expr::Int(10)),
         Expr::Binary(BinaryOp::kLt, Expr::ColumnRef("T1"),
                      Expr::Int(date::Jan1(1995))),
         Expr::Binary(BinaryOp::kGt, Expr::ColumnRef("T2"),
                      Expr::Int(date::Jan1(1983)))});
    auto sel = algebra::Select(tj, pred).ValueOrDie();
    auto sorted = algebra::Sort(sel, {{"POSID", true}}).ValueOrDie();
    auto p = mw.PrepareLogical(algebra::TransferM(sorted).ValueOrDie())
                 .ValueOrDie();
    std::printf("  Query 2 (agg + tjoin)  %7zu  %8zu  %8zu\n", p.num_classes,
                p.num_elements, p.num_physical);
  }
  size_t q3_classes = 0;
  {
    auto c = Query3(&db, date::Jan1(1994));
    auto p = mw.PrepareLogical(c.initial).ValueOrDie();
    q3_classes = p.num_classes;
    std::printf("  Query 3 (self tjoin)   %7zu  %8zu  %8zu\n", p.num_classes,
                p.num_elements, p.num_physical);
  }
  {
    // Query 4's shape: a regular join of POSITION and EMPLOYEE.
    const Schema pos = db.catalog().GetTable("POSITION").ValueOrDie()->schema();
    const Schema emp = db.catalog().GetTable("EMPLOYEE").ValueOrDie()->schema();
    auto scan_p = algebra::Scan("POSITION", pos, "P").ValueOrDie();
    auto scan_e = algebra::Scan("EMPLOYEE", emp, "E").ValueOrDie();
    auto join =
        algebra::Join(scan_p, scan_e, {{"P.EMPID", "E.EMPID"}}).ValueOrDie();
    auto proj =
        algebra::Project(join, {{Expr::ColumnRef("POSID"), "POSID"},
                                {Expr::ColumnRef("E.EMPNAME"), "EMPNAME"},
                                {Expr::ColumnRef("ADDR"), "ADDR"}})
            .ValueOrDie();
    auto sorted = algebra::Sort(proj, {{"POSID", true}}).ValueOrDie();
    auto p = mw.PrepareLogical(algebra::TransferM(sorted).ValueOrDie())
                 .ValueOrDie();
    std::printf("  Query 4 (regular join) %7zu  %8zu  %8zu\n", p.num_classes,
                p.num_elements, p.num_physical);
  }
  std::printf("\n");

  // ---- Robustness sweep. ----
  Robustness rob;
  for (size_t raw : {27000, 55000, 83857}) {
    const std::string table = "POS_" + std::to_string(raw);
    if (!workload::LoadPositionVariant(&db, table, Scaled(raw),
                                       workload::UisOptions())
             .ok()) {
      return 1;
    }
    Evaluate(&mw, Query1(&db, table), "Q1 n=" + std::to_string(raw), &rob);
    (void)db.Execute("DROP TABLE " + table);
  }
  for (int year : {1990, 1994, 1996}) {
    Evaluate(&mw, Query3(&db, date::Jan1(year)),
             "Q3 start<" + std::to_string(year), &rob);
  }

  std::printf("\nshape checks (paper: \"in most cases the optimizer does "
              "select the best plan\"):\n");
  ShapeChecks checks;
  checks.Check(rob.within_20pct * 3 >= rob.points * 2,
               "chosen plan within ~20% of the best on >= 2/3 of points (" +
                   std::to_string(rob.within_20pct) + "/" +
                   std::to_string(rob.points) + ")");
  checks.Check(rob.worst_ratio < 3.0,
               "no catastrophic choice (worst " +
                   std::to_string(rob.worst_ratio) + "x)");
  checks.Check(q1_classes > 2 && q3_classes > q1_classes,
               "the join query explores more classes than the "
               "aggregation-only query");
  return checks.failures() == 0 ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace tango

int main() { return tango::bench::Main(); }
