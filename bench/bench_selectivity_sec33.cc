// Reproduces the §3.3 selectivity study: on a relation of 100,000 tuples
// with 7-day periods uniform over 1995-01-01..2000-01-01, the predicate
// Overlaps(1997-02-01, 1997-02-08) actually selects ~0.4-0.8% of the
// tuples. Straightforward independent-conjunct estimation yields 24.7% —
// "a factor of 40 too high!" — while the semantic StartBefore/EndBefore
// method lands at ~0.8%. The harness sweeps additional windows and
// timeslices and reports the error factors of both estimators, with and
// without histograms.

#include <cmath>

#include "common/date.h"
#include "bench_util.h"
#include "sql/parser.h"
#include "stats/stats.h"

namespace tango {
namespace bench {
namespace {

int Main() {
  std::printf("=== Section 3.3: temporal selectivity estimation ===\n\n");

  dbms::Engine db;
  const size_t rows = Scaled(100000);
  if (!workload::LoadUniformR(&db, "R", rows).ok()) {
    std::fprintf(stderr, "load failed\n");
    return 1;
  }
  const dbms::Table* table = db.catalog().GetTable("R").ValueOrDie();
  stats::RelStats with_hist =
      stats::FromTableStats(table->stats(), table->schema());
  stats::RelStats no_hist = with_hist;
  for (auto& c : no_hist.columns) c.histogram = stats::Histogram();

  const Schema schema = table->schema();
  auto actual_count = [&](const std::string& where) {
    auto r = db.Execute("SELECT COUNT(*) AS C FROM R WHERE " + where);
    return static_cast<double>(r.ValueOrDie().rows[0][0].AsInt());
  };

  struct Probe {
    const char* label;
    int64_t a;  // window start (or slice point)
    int64_t b;  // window end; b == a+1 denotes a timeslice
  };
  const Probe probes[] = {
      {"paper: 1997-02-01..02-08", date::FromYmd(1997, 2, 1),
       date::FromYmd(1997, 2, 8)},
      {"1995-06-01..06-15", date::FromYmd(1995, 6, 1),
       date::FromYmd(1995, 6, 15)},
      {"1998-01-01..03-01", date::FromYmd(1998, 1, 1),
       date::FromYmd(1998, 3, 1)},
      {"1996-01-01..1997-01-01", date::FromYmd(1996, 1, 1),
       date::FromYmd(1997, 1, 1)},
      {"timeslice 1997-07-04", date::FromYmd(1997, 7, 4),
       date::FromYmd(1997, 7, 4) + 1},
      {"timeslice 1995-01-02", date::FromYmd(1995, 1, 2),
       date::FromYmd(1995, 1, 2) + 1},
  };

  std::printf("%-26s %9s %10s %10s %10s %10s\n", "predicate", "actual",
              "naive", "semantic", "sem+hist", "naive err");

  ShapeChecks checks;
  double paper_naive_err = 0, paper_sem_err = 0;
  bool semantic_ok = true;
  for (const Probe& p : probes) {
    const std::string where = "T1 < " + std::to_string(p.b) + " AND T2 > " +
                              std::to_string(p.a);
    const double actual = actual_count(where);
    auto pred =
        sql::Parser::ParseSelect("SELECT ID FROM R WHERE " + where)
            .ValueOrDie()
            ->where;
    const double naive =
        stats::EstimateSelectivity(pred, schema, no_hist, false) *
        no_hist.cardinality;
    const double semantic =
        stats::EstimateSelectivity(pred, schema, no_hist, true) *
        no_hist.cardinality;
    const double sem_hist =
        stats::EstimateSelectivity(pred, schema, with_hist, true) *
        with_hist.cardinality;
    const double naive_err = actual > 0 ? naive / actual : 0;
    std::printf("%-26s %9.0f %10.0f %10.0f %10.0f %9.1fx\n", p.label, actual,
                naive, semantic, sem_hist, naive_err);
    if (p.label[0] == 'p') {
      paper_naive_err = naive_err;
      paper_sem_err = actual > 0 ? semantic / actual : 0;
    }
    if (actual > 20) {
      // Semantic estimates within a factor of 2 of the truth.
      if (semantic < actual / 2 || semantic > actual * 2) semantic_ok = false;
      if (sem_hist < actual / 2 || sem_hist > actual * 2) semantic_ok = false;
    }
  }

  std::printf("\nshape checks (paper: naive is ~40x too high; semantic "
              "within the actual 0.4%%-0.8%% band):\n");
  checks.Check(paper_naive_err > 20,
               "naive estimate >20x too high on the paper's example (got " +
                   std::to_string(paper_naive_err) + "x)");
  checks.Check(paper_sem_err > 0.5 && paper_sem_err < 2.5,
               "semantic estimate within ~2x on the paper's example (got " +
                   std::to_string(paper_sem_err) + "x)");
  checks.Check(semantic_ok,
               "semantic estimates within 2x across the probe sweep");
  return checks.failures() == 0 ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace tango

int main() { return tango::bench::Main(); }
