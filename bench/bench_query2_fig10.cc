// Reproduces Figure 10: Query 2 — temporal aggregation of POSITION joined
// temporally back to POSITION tuples with PayRate > 10, restricted to a
// time window [1983-01-01, END), sorted by position — under the paper's six
// plans, with END varying from 1984 to 2000.
//
//   Plan 1: TAGGR^M in the middleware, everything else in the DBMS
//   Plan 2: + temporal join in the middleware (sort back in the DBMS)
//   Plan 3: + sorting in the middleware
//   Plan 4: + the selection in the middleware (transfers the base relation)
//   Plan 5: like Plan 1 but without the argument-reducing selection below
//           the temporal aggregation
//   Plan 6: everything in the DBMS
//
// Expected shape (paper): similar times while the window ends before the
// data's mass (most POSITION data is after 1992); for larger windows Plans
// 4-5 deteriorate (TRANSFER^M of whole relations), Plan 6 deteriorates
// (DBMS temporal aggregation), Plan 1 deteriorates faster than 2-3
// (TRANSFER^D of the growing aggregation result); the histogram-equipped
// optimizer settles on the Plan-2 shape while the histogram-less one errs.

#include "common/date.h"
#include "bench_util.h"

namespace tango {
namespace bench {
namespace {

using optimizer::Algorithm;
using optimizer::PhysPlanPtr;

constexpr int64_t kPayRate = 10;

struct Query2Plans {
  std::vector<PhysPlanPtr> plans;  // plans[0] = Plan 1 ...
  algebra::OpPtr initial;
};

Query2Plans BuildPlans(dbms::Engine* db, int64_t w_start, int64_t w_end) {
  const Schema schema =
      db->catalog().GetTable("POSITION").ValueOrDie()->schema();
  auto scan_a = algebra::Scan("POSITION", schema, "A").ValueOrDie();
  auto scan_b = algebra::Scan("POSITION", schema, "B").ValueOrDie();

  auto window_pred = [&](const std::string& t1, const std::string& t2) {
    return Expr::And(
        Expr::Binary(BinaryOp::kLt, Expr::ColumnRef(t1), Expr::Int(w_end)),
        Expr::Binary(BinaryOp::kGt, Expr::ColumnRef(t2), Expr::Int(w_start)));
  };

  // Aggregation side: σ_w(A) (the argument reducer) and the plain A.
  auto sel_a = algebra::Select(scan_a, window_pred("A.T1", "A.T2")).ValueOrDie();
  const std::vector<algebra::AggItem> aggs = {
      {AggFunc::kCount, "A.POSID", "CNT"}};
  auto agg_reduced = algebra::TAggregate(sel_a, {"A.POSID"}, aggs).ValueOrDie();
  auto agg_full = algebra::TAggregate(scan_a, {"A.POSID"}, aggs).ValueOrDie();

  // B side: pay rate + window.
  auto pay_pred = Expr::Binary(BinaryOp::kGt, Expr::ColumnRef("PAYRATE"),
                               Expr::Int(kPayRate));
  auto sel_b = algebra::Select(
                   scan_b, Expr::And(pay_pred, window_pred("B.T1", "B.T2")))
                   .ValueOrDie();

  auto tjoin = [&](const algebra::OpPtr& agg) {
    return algebra::TJoin(agg, sel_b, {{"POSID", "B.POSID"}}).ValueOrDie();
  };
  auto tj_r = tjoin(agg_reduced);
  // The final window selection on the intersected periods.
  auto top_sel = [&](const algebra::OpPtr& tj) {
    return algebra::Select(tj, window_pred("T1", "T2")).ValueOrDie();
  };
  auto proj = [&](const algebra::OpPtr& in) {
    return algebra::Project(in, {{Expr::ColumnRef("POSID"), "POSID"},
                                 {Expr::ColumnRef("EMPNAME"), "EMPNAME"},
                                 {Expr::ColumnRef("CNT"), "CNT"},
                                 {Expr::ColumnRef("T1"), "T1"},
                                 {Expr::ColumnRef("T2"), "T2"}})
        .ValueOrDie();
  };

  Query2Plans out;
  // The initial logical plan fed to the optimizer: selections above the
  // join (the memo rules derive the pushed/replicated variants).
  {
    auto tj0 = tjoin(agg_full);
    auto pred = Expr::And(pay_pred, window_pred("T1", "T2"));
    auto sel0 = algebra::Select(tj0, pred).ValueOrDie();
    auto sorted =
        algebra::Sort(proj(sel0), {{"POSID", true}}).ValueOrDie();
    out.initial = algebra::TransferM(sorted).ValueOrDie();
  }

  const std::vector<algebra::SortSpec> agg_in_keys = {{"POSID", true},
                                                      {"T1", true}};
  const std::vector<algebra::SortSpec> posid_key = {{"POSID", true}};

  // Shared building blocks.
  auto scan_a_d = Node(Algorithm::kScanD, scan_a, {});
  auto scan_b_d = Node(Algorithm::kScanD, scan_b, {});
  auto sel_a_d = Node(Algorithm::kSelectD, sel_a, {scan_a_d});
  auto sel_b_d = Node(Algorithm::kSelectD, sel_b, {scan_b_d});

  // TAGGR^M over the reduced argument, sorted in the DBMS (Plan 1/2/3 base).
  auto aggm_reduced = Node(
      Algorithm::kTAggrM, agg_reduced,
      {Node(Algorithm::kTransferM,
            TransferOpOf(algebra::OpKind::kTransferM, sel_a->schema),
            {Node(Algorithm::kSortD, SortOpOf(sel_a->schema, agg_in_keys),
                  {sel_a_d})})});
  // TAGGR^M over the full relation (Plan 5).
  auto aggm_full = Node(
      Algorithm::kTAggrM, agg_full,
      {Node(Algorithm::kTransferM,
            TransferOpOf(algebra::OpKind::kTransferM, scan_a->schema),
            {Node(Algorithm::kSortD, SortOpOf(scan_a->schema, agg_in_keys),
                  {scan_a_d})})});

  // DBMS pipeline above a (transferred-back) aggregation result:
  //   TJOIN^D + σ_w + π + sort + T^M    (Plans 1, 5, 6 share this).
  auto dbms_tail = [&](PhysPlanPtr agg_side, const algebra::OpPtr& agg_op) {
    auto tj = tjoin(agg_op);
    auto sel_top = top_sel(tj);
    auto projected = proj(sel_top);
    return Node(
        Algorithm::kTransferM,
        TransferOpOf(algebra::OpKind::kTransferM, projected->schema),
        {Node(Algorithm::kSortD, SortOpOf(projected->schema, posid_key),
              {Node(Algorithm::kProjectD, projected,
                    {Node(Algorithm::kSelectD, sel_top,
                          {Node(Algorithm::kTJoinD, tj,
                                {agg_side, sel_b_d})})})})});
  };

  // Plan 1: T^D loads the middleware aggregation result; the DBMS finishes.
  out.plans.push_back(dbms_tail(
      Node(Algorithm::kTransferD,
           TransferOpOf(algebra::OpKind::kTransferD, agg_reduced->schema),
           {aggm_reduced}),
      agg_reduced));

  // Middleware temporal join over the in-middleware aggregation result and
  // the transferred B side (Plans 2, 3).
  auto b_transferred = Node(
      Algorithm::kTransferM,
      TransferOpOf(algebra::OpKind::kTransferM, sel_b->schema),
      {Node(Algorithm::kSortD, SortOpOf(sel_b->schema, posid_key), {sel_b_d})});
  auto mw_join_tail = [&](PhysPlanPtr agg_side, const algebra::OpPtr& agg_op,
                          PhysPlanPtr b_side) {
    auto tj = tjoin(agg_op);
    auto sel_top = top_sel(tj);
    auto projected = proj(sel_top);
    return std::make_tuple(
        Node(Algorithm::kProjectM, projected,
             {Node(Algorithm::kFilterM, sel_top,
                   {Node(Algorithm::kTJoinM, tj, {agg_side, b_side})})}),
        projected);
  };

  // Plan 2: join in the middleware, final sort back in the DBMS.
  {
    auto [mw_projected, projected] =
        mw_join_tail(aggm_reduced, agg_reduced, b_transferred);
    out.plans.push_back(Node(
        Algorithm::kTransferM,
        TransferOpOf(algebra::OpKind::kTransferM, projected->schema),
        {Node(Algorithm::kSortD, SortOpOf(projected->schema, posid_key),
              {Node(Algorithm::kTransferD,
                    TransferOpOf(algebra::OpKind::kTransferD, projected->schema),
                    {mw_projected})})}));
  }

  // Plan 3: join and sorting in the middleware.
  {
    auto [mw_projected, projected] =
        mw_join_tail(aggm_reduced, agg_reduced, b_transferred);
    out.plans.push_back(Node(Algorithm::kSortM,
                             SortOpOf(projected->schema, posid_key),
                             {mw_projected}));
  }

  // Plan 4: also the B-side selection in the middleware (the whole base
  // relation crosses the wire).
  {
    auto b_mw = Node(
        Algorithm::kFilterM, sel_b,
        {Node(Algorithm::kSortM, SortOpOf(scan_b->schema, posid_key),
              {Node(Algorithm::kTransferM,
                    TransferOpOf(algebra::OpKind::kTransferM, scan_b->schema),
                    {scan_b_d})})});
    auto [mw_projected, projected] =
        mw_join_tail(aggm_reduced, agg_reduced, b_mw);
    out.plans.push_back(Node(Algorithm::kSortM,
                             SortOpOf(projected->schema, posid_key),
                             {mw_projected}));
  }

  // Plan 5: Plan 1 without the argument-reducing selection.
  out.plans.push_back(dbms_tail(
      Node(Algorithm::kTransferD,
           TransferOpOf(algebra::OpKind::kTransferD, agg_full->schema),
           {aggm_full}),
      agg_full));

  // Plan 6: everything in the DBMS.
  out.plans.push_back(
      dbms_tail(Node(Algorithm::kTAggrD, agg_reduced, {sel_a_d}), agg_reduced));

  return out;
}

/// Compact description of an optimizer-chosen plan's site assignment.
std::string DescribeChoice(const PhysPlanPtr& plan) {
  std::function<bool(const PhysPlanPtr&, Algorithm)> has =
      [&](const PhysPlanPtr& p, Algorithm a) {
        if (p->algorithm == a) return true;
        for (const auto& c : p->children) {
          if (has(c, a)) return true;
        }
        return false;
      };
  std::string out;
  out += has(plan, Algorithm::kTAggrM) ? "aggM" : "aggD";
  out += has(plan, Algorithm::kTJoinM) ? "+joinM" : "+joinD";
  if (has(plan, Algorithm::kFilterM)) out += "+selM";
  if (has(plan, Algorithm::kSortM)) out += "+sortM";
  return out;
}

int Main() {
  std::printf("=== Figure 10: Query 2 (aggregation + temporal join + "
              "selections), 6 plans ===\n");
  std::printf("running times in seconds; scale=%.2f\n\n", Scale());

  dbms::Engine db;
  workload::UisOptions opts;
  opts.position_rows = Scaled(opts.position_rows);
  opts.employee_rows = 1;
  if (!workload::LoadUis(&db, opts).ok()) {
    std::fprintf(stderr, "load failed\n");
    return 1;
  }

  Middleware mw(&db);
  CalibrateOrDie(&mw);

  Middleware::Config no_hist_cfg;
  no_hist_cfg.use_histograms = false;
  Middleware mw_no_hist(&db, no_hist_cfg);
  mw_no_hist.cost_model().factors() = mw.cost_model().factors();

  const int64_t w_start = date::Jan1(1983);
  std::printf("%6s %8s %8s %8s %8s %8s %8s   %-22s %s\n", "end", "plan1",
              "plan2", "plan3", "plan4", "plan5", "plan6", "chosen(hist)",
              "chosen(no hist)");

  std::vector<std::array<double, 6>> times;
  std::vector<std::string> hist_choice, nohist_choice;
  bool all_agree = true;
  for (int year = 1984; year <= 2000; year += 1) {
    const int64_t w_end = date::Jan1(year);
    Query2Plans plans = BuildPlans(&db, w_start, w_end);
    std::array<double, 6> row{};
    uint64_t checksum = 0;
    for (size_t p = 0; p < 6; ++p) {
      auto r = mw.Execute(plans.plans[p]);
      if (!r.ok()) {
        std::fprintf(stderr, "plan %zu failed: %s\n", p + 1,
                     r.status().ToString().c_str());
        return 1;
      }
      row[p] = r.ValueOrDie().elapsed_seconds;
      // Plan 5 legitimately splits constant periods differently (the
      // argument-reducing selection changes period boundaries outside the
      // window, not the time-varying content): compare snapshots clipped to
      // the window — columns (POSID, EMPNAME, CNT, T1, T2).
      const uint64_t c =
          SnapshotChecksum(r.ValueOrDie().rows, 3, 4, w_start, w_end);
      if (p == 0) {
        checksum = c;
      } else {
        all_agree = all_agree && c == checksum;
      }
    }
    times.push_back(row);

    // Per-window optimizer choice: the windows differ only in literals
    // (one fingerprint), so clear the caches or every later window would
    // just replay the first window's cached plan.
    mw.plan_cache().Clear();
    mw_no_hist.plan_cache().Clear();
    auto with_hist = mw.PrepareLogical(plans.initial);
    auto without = mw_no_hist.PrepareLogical(plans.initial);
    hist_choice.push_back(with_hist.ok()
                              ? DescribeChoice(with_hist.ValueOrDie().plan)
                              : "ERR");
    nohist_choice.push_back(
        without.ok() ? DescribeChoice(without.ValueOrDie().plan) : "ERR");
    std::printf("%6d %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f   %-22s %s\n", year,
                row[0], row[1], row[2], row[3], row[4], row[5],
                hist_choice.back().c_str(), nohist_choice.back().c_str());
  }

  std::printf("\nshape checks:\n");
  ShapeChecks checks;
  checks.Check(all_agree,
               "all six plans agree on the time-varying result (snapshot "
               "equivalence over the window)");
  const auto& first = times.front();
  const auto& last = times.back();
  // Figure 10(a): for highly selective windows, plans 1-3 and 6 are all
  // competitive while plans 4-5 perform poorly — their TRANSFER^M takes the
  // whole base relation.
  {
    const double best = std::min(std::min(first[0], first[1]),
                                 std::min(first[2], first[5]));
    const double worst_136 = std::max(std::max(first[0], first[1]),
                                      std::max(first[2], first[5]));
    checks.Check(worst_136 < 5 * best,
                 "Fig 10(a): plans 1-3 and 6 comparable for small windows");
    checks.Check(first[3] > 3 * best && first[4] > 3 * best,
                 "Fig 10(a): plans 4-5 poor for small windows "
                 "(whole-relation TRANSFER^M)");
  }
  // Figure 10(b): for large windows plan 6 (DBMS temporal aggregation)
  // deteriorates rapidly; plan 1 deteriorates faster than plans 2-3
  // (TRANSFER^D of the growing aggregation result); plan 5 stays above
  // plan 1's middleware-reduced variant.
  {
    const double best23 = std::min(last[1], last[2]);
    checks.Check(last[5] > 2.0 * best23,
                 "Fig 10(b): plan 6 deteriorates (got " +
                     std::to_string(last[5] / best23) + "x of plans 2-3)");
    checks.Check(last[0] > best23,
                 "Fig 10(b): plan 1 deteriorates faster than plans 2-3");
    checks.Check(last[4] > 0.95 * last[0],
                 "Fig 10(b): plan 5 no better than plan 1");
    checks.Check(last[3] > 0.95 * std::min(last[1], last[2]),
                 "Fig 10(b): plan 4 no better than plans 2-3");
  }
  // The histogram-equipped optimizer keeps the aggregation in the
  // middleware for every window (the paper: it always returned Plan 2).
  bool hist_all_aggm = true;
  for (const std::string& c : hist_choice) {
    if (c.find("aggM") == std::string::npos) hist_all_aggm = false;
  }
  checks.Check(hist_all_aggm,
               "with histograms the optimizer always uses TAGGR^M");
  // The histogram-less optimizer's choices differ somewhere (the paper: it
  // switched plans across the sweep).
  checks.Check(hist_choice != nohist_choice,
               "histograms change the optimizer's choices");
  return checks.failures() == 0 ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace tango

int main() { return tango::bench::Main(); }
