// Reproduces Figure 11(b): Query 4 — a regular join of POSITION and
// EMPLOYEE ("for each position, list the employee name and address"),
// varying the POSITION size.
//
//   Plan 1: sort-merge join in the middleware
//   Plan 2: nested-loop join in the DBMS (the paper pins it with an Oracle
//           hint; here via the session's forced join method)
//   Plan 3: sort-merge join in the DBMS
//
// Expected shape (paper): the DBMS plans win; the middleware plan stays
// competitive (TANGO's run-time overhead is insignificant); the optimizer
// assigns the join to the DBMS.

#include "bench_util.h"

namespace tango {
namespace bench {
namespace {

using optimizer::Algorithm;
using optimizer::PhysPlanPtr;

struct Query4Plans {
  PhysPlanPtr plan1;      // middleware join
  PhysPlanPtr plan_dbms;  // DBMS join (method set on the engine session)
  algebra::OpPtr initial;
};

Query4Plans BuildPlans(dbms::Engine* db, const std::string& pos_table) {
  const Schema pos = db->catalog().GetTable(pos_table).ValueOrDie()->schema();
  const Schema emp = db->catalog().GetTable("EMPLOYEE").ValueOrDie()->schema();
  auto scan_p = algebra::Scan(pos_table, pos, "P").ValueOrDie();
  auto scan_e = algebra::Scan("EMPLOYEE", emp, "E").ValueOrDie();
  // Only the relevant attributes travel (the paper's plans scan "relevant
  // attributes"): projection below the join.
  auto proj_p = algebra::Project(scan_p, {{Expr::ColumnRef("POSID"), "POSID"},
                                          {Expr::ColumnRef("P.EMPID"), "EMPID"}})
                    .ValueOrDie();
  auto proj_e =
      algebra::Project(scan_e, {{Expr::ColumnRef("E.EMPID"), "EID"},
                                {Expr::ColumnRef("EMPNAME"), "EMPNAME"},
                                {Expr::ColumnRef("ADDR"), "ADDR"}})
          .ValueOrDie();
  auto join = algebra::Join(proj_p, proj_e, {{"EMPID", "EID"}}).ValueOrDie();
  auto final_proj =
      algebra::Project(join, {{Expr::ColumnRef("POSID"), "POSID"},
                              {Expr::ColumnRef("EMPNAME"), "EMPNAME"},
                              {Expr::ColumnRef("ADDR"), "ADDR"}})
          .ValueOrDie();
  auto sorted = algebra::Sort(final_proj, {{"POSID", true}, {"EMPNAME", true}})
                    .ValueOrDie();

  Query4Plans plans;
  plans.initial = algebra::TransferM(sorted).ValueOrDie();

  auto scan_p_d = Node(Algorithm::kScanD, scan_p, {});
  auto scan_e_d = Node(Algorithm::kScanD, scan_e, {});
  auto proj_p_d = Node(Algorithm::kProjectD, proj_p, {scan_p_d});
  auto proj_e_d = Node(Algorithm::kProjectD, proj_e, {scan_e_d});

  // Plan 1: transfers of the projected inputs, sorted in the DBMS, merge
  // join + projection + (order preserved by the join, but the final sort
  // includes EMPNAME, so sort in the middleware).
  const std::vector<algebra::SortSpec> key_p = {{"EMPID", true}};
  const std::vector<algebra::SortSpec> key_e = {{"EID", true}};
  auto arg_p = Node(Algorithm::kTransferM,
                    TransferOpOf(algebra::OpKind::kTransferM, proj_p->schema),
                    {Node(Algorithm::kSortD, SortOpOf(proj_p->schema, key_p),
                          {proj_p_d})});
  auto arg_e = Node(Algorithm::kTransferM,
                    TransferOpOf(algebra::OpKind::kTransferM, proj_e->schema),
                    {Node(Algorithm::kSortD, SortOpOf(proj_e->schema, key_e),
                          {proj_e_d})});
  plans.plan1 = Node(
      Algorithm::kSortM,
      SortOpOf(final_proj->schema, {{"POSID", true}, {"EMPNAME", true}}),
      {Node(Algorithm::kProjectM, final_proj,
            {Node(Algorithm::kMergeJoinM, join, {arg_p, arg_e})})});

  // Plans 2/3: everything in the DBMS; the join method comes from the
  // engine session configuration (the Oracle-hint stand-in). The join runs
  // directly over the base tables so the DBMS can use its index access
  // paths (nested loop probes IX_EMP_ID); the projection follows.
  auto join_full =
      algebra::Join(scan_p, scan_e, {{"P.EMPID", "E.EMPID"}}).ValueOrDie();
  auto proj_full =
      algebra::Project(join_full, {{Expr::ColumnRef("POSID"), "POSID"},
                                   {Expr::ColumnRef("E.EMPNAME"), "EMPNAME"},
                                   {Expr::ColumnRef("ADDR"), "ADDR"}})
          .ValueOrDie();
  plans.plan_dbms = Node(
      Algorithm::kTransferM,
      TransferOpOf(algebra::OpKind::kTransferM, proj_full->schema),
      {Node(Algorithm::kSortD,
            SortOpOf(proj_full->schema, {{"POSID", true}, {"EMPNAME", true}}),
            {Node(Algorithm::kProjectD, proj_full,
                  {Node(Algorithm::kJoinD, join_full, {scan_p_d, scan_e_d})})})});
  return plans;
}

int Main() {
  std::printf("=== Figure 11(b): Query 4 (regular join), 3 plans ===\n");
  std::printf("running times in seconds; scale=%.2f\n\n", Scale());

  dbms::Engine db;
  workload::UisOptions opts;
  opts.employee_rows = Scaled(opts.employee_rows);
  opts.position_rows = 1;  // base POSITION unused; variants below
  if (!workload::LoadUis(&db, opts).ok()) {
    std::fprintf(stderr, "load failed\n");
    return 1;
  }

  std::printf("%10s %12s %12s %12s   %s\n", "tuples", "plan1 (MW)",
              "plan2 (NL)", "plan3 (SM)", "optimizer site");

  const size_t paper_sizes[] = {8000, 17000, 27000, 36000, 46000,
                                55000, 64000, 74000};
  bool all_agree = true;
  std::vector<double> mw_t, nl_t, sm_t;
  std::string site_last;
  for (size_t raw : paper_sizes) {
    const size_t n = Scaled(raw);
    const std::string table = "POS_" + std::to_string(raw);
    if (!workload::LoadPositionVariant(&db, table, n, workload::UisOptions())
             .ok()) {
      std::fprintf(stderr, "variant load failed\n");
      return 1;
    }
    Middleware mw(&db);
    Query4Plans plans = BuildPlans(&db, table);

    // Close races: best of two runs each, and checksum once.
    auto r1 = mw.Execute(plans.plan1);
    db.config().forced_join = dbms::SessionConfig::JoinMethod::kNestedLoop;
    auto r2 = mw.Execute(plans.plan_dbms);
    db.config().forced_join = dbms::SessionConfig::JoinMethod::kMerge;
    auto r3 = mw.Execute(plans.plan_dbms);
    if (!r1.ok() || !r2.ok() || !r3.ok()) {
      std::fprintf(stderr, "execution failed: %s %s %s\n",
                   r1.status().ToString().c_str(),
                   r2.status().ToString().c_str(),
                   r3.status().ToString().c_str());
      return 1;
    }
    const uint64_t c1 = Checksum(r1.ValueOrDie().rows);
    all_agree = all_agree && c1 == Checksum(r2.ValueOrDie().rows) &&
                c1 == Checksum(r3.ValueOrDie().rows);
    double t1 = r1.ValueOrDie().elapsed_seconds;
    double t3 = r3.ValueOrDie().elapsed_seconds;
    db.config().forced_join = dbms::SessionConfig::JoinMethod::kAuto;
    t1 = std::min(t1, RunBest(&mw, plans.plan1, 1).first);
    db.config().forced_join = dbms::SessionConfig::JoinMethod::kNestedLoop;
    const double t2 =
        std::min(r2.ValueOrDie().elapsed_seconds,
                 RunBest(&mw, plans.plan_dbms, 1).first);
    db.config().forced_join = dbms::SessionConfig::JoinMethod::kMerge;
    t3 = std::min(t3, RunBest(&mw, plans.plan_dbms, 1).first);
    db.config().forced_join = dbms::SessionConfig::JoinMethod::kAuto;
    mw_t.push_back(t1);
    nl_t.push_back(t2);
    sm_t.push_back(t3);

    // Optimizer choice: join in the DBMS or the middleware? (The paper:
    // plans 2 and 3 are one plan to the optimizer, which does not model
    // specific DBMS join algorithms.)
    std::string site = "ERR";
    auto prepared = mw.PrepareLogical(plans.initial);
    if (prepared.ok()) {
      std::function<bool(const PhysPlanPtr&)> mw_join =
          [&](const PhysPlanPtr& p) {
            if (p->algorithm == Algorithm::kMergeJoinM) return true;
            for (const auto& c : p->children) {
              if (mw_join(c)) return true;
            }
            return false;
          };
      site = mw_join(prepared.ValueOrDie().plan) ? "MW" : "DBMS";
    }
    site_last = site;
    std::printf("%10zu %12.3f %12.3f %12.3f   %s\n", n, mw_t.back(),
                nl_t.back(), sm_t.back(), site.c_str());
    (void)db.Execute("DROP TABLE " + table);
  }

  std::printf("\nshape checks (paper: DBMS wins for regular operations; "
              "TANGO's overhead is insignificant):\n");
  ShapeChecks checks;
  checks.Check(all_agree, "all plans produce identical results");
  checks.Check(std::min(nl_t.front(), sm_t.front()) < mw_t.front(),
               "a DBMS join is the fastest at the smallest size");
  // At reduced scales the per-statement round trips dominate the
  // middleware plan (4 statements vs 1), so the competitiveness bound is
  // looser there; at the paper's sizes the plans genuinely converge.
  const double competitive = Scale() >= 0.8 ? 1.6 : 4.0;
  checks.Check(mw_t.back() < competitive * std::min(nl_t.back(), sm_t.back()),
               "middleware join competitive at the largest size (got " +
                   std::to_string(mw_t.back() /
                                  std::min(nl_t.back(), sm_t.back())) +
                   "x, bound " + std::to_string(competitive) + "x)");
  checks.Check(site_last == "DBMS", "optimizer assigns the join to the DBMS");
  return checks.failures() == 0 ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace tango

int main() { return tango::bench::Main(); }
